package eval_test

import (
	"errors"
	"testing"
	"testing/quick"

	"gauntlet/internal/bitstream"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/eval"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
)

// run parses, checks and executes a single-control program named "ig" with
// the given arguments.
func run(t *testing.T, src string, cfg eval.Config, args ...eval.Value) []eval.Value {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	in := eval.New(prog, nil, cfg)
	ctrl := prog.Control("ig")
	if ctrl == nil {
		t.Fatal("no control ig")
	}
	if err := in.ExecControl(ctrl, args); err != nil {
		t.Fatalf("exec: %v", err)
	}
	return args
}

func bit(w int, v uint64) *eval.BitVal { return &eval.BitVal{Width: w, V: v} }

func TestArith(t *testing.T) {
	cases := []struct {
		expr string
		in   uint64
		want uint64
	}{
		{"x + 8w1", 255, 0},
		{"x - 8w1", 0, 255},
		{"x * 8w3", 100, 44}, // 300 mod 256
		{"x |+| 8w200", 100, 255},
		{"x |-| 8w200", 100, 0},
		{"x & 8w0xF", 0xAB, 0xB},
		{"x | 8w0xF0", 0xB, 0xFB},
		{"x ^ 8w0xFF", 0xAA, 0x55},
		{"~x", 0x0F, 0xF0},
		{"-x", 1, 255},
		{"x << 8w2", 0x81, 0x04},
		{"x >> 8w2", 0x81, 0x20},
		{"x << 8w9", 0xFF, 0},   // shift past width
		{"x >> 8w200", 0xFF, 0}, // shift past width
		{"x[7:4] ++ x[3:0]", 0x5A, 0x5A},
		{"x[3:0] ++ x[7:4]", 0x5A, 0xA5},
		{"(bit<8>) x[3:0]", 0xAB, 0x0B},
	}
	for _, tc := range cases {
		src := `
control ig(inout bit<8> x) {
    apply { x = ` + tc.expr + `; }
}`
		got := run(t, src, nil, bit(8, tc.in))
		if b := got[0].(*eval.BitVal); b.V != tc.want {
			t.Errorf("%s with x=%d: got %d, want %d", tc.expr, tc.in, b.V, tc.want)
		}
	}
}

func TestComparisonsAndMux(t *testing.T) {
	src := `
control ig(inout bit<8> x) {
    apply {
        bool lt = x < 8w10;
        bool ge = x >= 8w10;
        x = lt && !ge ? 8w1 : 8w0;
    }
}`
	if got := run(t, src, nil, bit(8, 5))[0].(*eval.BitVal).V; got != 1 {
		t.Errorf("x=5: got %d, want 1", got)
	}
	if got := run(t, src, nil, bit(8, 10))[0].(*eval.BitVal).V; got != 0 {
		t.Errorf("x=10: got %d, want 0", got)
	}
}

func TestCopyInCopyOut(t *testing.T) {
	// Fig. 5d shape: a slice passed as inout while the action assigns a
	// disjoint slice of the same variable. The assignment inside the body
	// must persist, and the sliced portion must be copied back.
	src := `
header H { bit<8> a; }
struct S { H h; }
control ig(inout S hdr) {
    action a(inout bit<7> val) {
        hdr.h.a[0:0] = 1w0;
        val = 7w127;
    }
    apply {
        hdr.h.a = 8w255;
        a(hdr.h.a[7:1]);
    }
}`
	hdrT := &ast.HeaderType{Name: "H", Fields: []ast.Field{{Name: "a", Type: &ast.BitType{Width: 8}}}}
	structT := &ast.StructType{Name: "S", Fields: []ast.Field{{Name: "h", Type: hdrT}}}
	s := eval.NewValue(structT, eval.ZeroUndef).(*eval.StructVal)
	s.F["h"].(*eval.HeaderVal).Valid = true
	got := run(t, src, nil, s)
	a := got[0].(*eval.StructVal).F["h"].(*eval.HeaderVal).F["a"].(*eval.BitVal)
	// Copy-in: val = 1111111b. Body: bit 0 of a cleared (a=0xFE), then
	// val=127 unchanged. Copy-out: a[7:1]=127 → a = 1111111_0 = 0xFE.
	if a.V != 0xFE {
		t.Errorf("a = %#x, want 0xFE", a.V)
	}
}

func TestExitRespectsCopyOut(t *testing.T) {
	// Fig. 5f: exit inside an action must still copy out inout params.
	src := `
header Eth { bit<16> eth_type; }
struct S { Eth eth; }
control ig(inout S h) {
    action a(inout bit<16> val) {
        val = 16w3;
        exit;
    }
    apply {
        a(h.eth.eth_type);
        h.eth.eth_type = 16w99; // unreachable: exit terminates the control
    }
}`
	ethT := &ast.HeaderType{Name: "Eth", Fields: []ast.Field{{Name: "eth_type", Type: &ast.BitType{Width: 16}}}}
	structT := &ast.StructType{Name: "S", Fields: []ast.Field{{Name: "eth", Type: ethT}}}
	s := eval.NewValue(structT, eval.ZeroUndef).(*eval.StructVal)
	s.F["eth"].(*eval.HeaderVal).Valid = true
	got := run(t, src, nil, s)
	v := got[0].(*eval.StructVal).F["eth"].(*eval.HeaderVal).F["eth_type"].(*eval.BitVal)
	if v.V != 3 {
		t.Errorf("eth_type = %d, want 3 (exit must respect copy-in/copy-out)", v.V)
	}
}

func TestFunctionReturn(t *testing.T) {
	src := `
control ig(inout bit<8> x) {
    bit<8> double(in bit<8> v) {
        return v + v;
    }
    apply {
        x = double(x) + 8w1;
    }
}`
	if got := run(t, src, nil, bit(8, 20))[0].(*eval.BitVal).V; got != 41 {
		t.Errorf("got %d, want 41", got)
	}
}

func TestFunctionInoutWithReturn(t *testing.T) {
	// Fig. 5a shape: a function with an inout param and a return — the
	// inout copy-out must still happen.
	src := `
control ig(inout bit<8> x) {
    bit<8> test(inout bit<8> v) {
        v = v + 8w1;
        return v;
    }
    apply {
        bit<8> r = test(x);
        x = x + r;
    }
}`
	// x=5: after test, x=6, r=6, then x=12.
	if got := run(t, src, nil, bit(8, 5))[0].(*eval.BitVal).V; got != 12 {
		t.Errorf("got %d, want 12", got)
	}
}

func TestOutParamUndefined(t *testing.T) {
	src := `
control ig(inout bit<8> x) {
    action a(out bit<8> v) {
        v = v + 8w1; // reads undefined v (zero under BMv2 policy)
    }
    apply {
        a(x);
    }
}`
	if got := run(t, src, nil, bit(8, 77))[0].(*eval.BitVal).V; got != 1 {
		t.Errorf("got %d, want 1 (out param zero-initialized by policy)", got)
	}
}

func TestTableApply(t *testing.T) {
	src := `
header H { bit<8> a; bit<8> b; }
struct S { H h; }
control ig(inout S hdr) {
    action assign() { hdr.h.a = 8w1; }
    action setb(bit<8> v) { hdr.h.b = v; }
    table t {
        key = { hdr.h.a : exact; }
        actions = { assign; setb; NoAction; }
        default_action = NoAction();
    }
    apply { t.apply(); }
}`
	hdrT := &ast.HeaderType{Name: "H", Fields: []ast.Field{
		{Name: "a", Type: &ast.BitType{Width: 8}},
		{Name: "b", Type: &ast.BitType{Width: 8}},
	}}
	structT := &ast.StructType{Name: "S", Fields: []ast.Field{{Name: "h", Type: hdrT}}}
	mk := func(a uint64) *eval.StructVal {
		s := eval.NewValue(structT, eval.ZeroUndef).(*eval.StructVal)
		h := s.F["h"].(*eval.HeaderVal)
		h.Valid = true
		h.F["a"] = bit(8, a)
		return s
	}
	cfg := eval.Config{"ig.t": &eval.TableConfig{Entries: []eval.TableEntry{
		{Key: []uint64{7}, Action: "assign"},
		{Key: []uint64{9}, Action: "setb", Args: []uint64{42}},
	}}}

	got := run(t, src, cfg, mk(7))
	h := got[0].(*eval.StructVal).F["h"].(*eval.HeaderVal)
	if h.F["a"].(*eval.BitVal).V != 1 {
		t.Errorf("hit on key 7: a = %v, want 1", h.F["a"])
	}

	got = run(t, src, cfg, mk(9))
	h = got[0].(*eval.StructVal).F["h"].(*eval.HeaderVal)
	if h.F["b"].(*eval.BitVal).V != 42 {
		t.Errorf("hit on key 9: b = %v, want 42 (control-plane arg)", h.F["b"])
	}

	got = run(t, src, cfg, mk(8))
	h = got[0].(*eval.StructVal).F["h"].(*eval.HeaderVal)
	if h.F["a"].(*eval.BitVal).V != 8 {
		t.Errorf("miss: a = %v, want unchanged 8", h.F["a"])
	}
}

func TestHeaderValidity(t *testing.T) {
	src := `
header H { bit<8> a; }
struct S { H h; }
control ig(inout S hdr, inout bit<8> out1) {
    apply {
        if (hdr.h.isValid()) {
            out1 = 8w1;
        } else {
            hdr.h.setValid();
            hdr.h.a = 8w5;
            out1 = 8w2;
        }
    }
}`
	hdrT := &ast.HeaderType{Name: "H", Fields: []ast.Field{{Name: "a", Type: &ast.BitType{Width: 8}}}}
	structT := &ast.StructType{Name: "S", Fields: []ast.Field{{Name: "h", Type: hdrT}}}
	s := eval.NewValue(structT, eval.ZeroUndef).(*eval.StructVal)
	got := run(t, src, nil, s, bit(8, 0))
	h := got[0].(*eval.StructVal).F["h"].(*eval.HeaderVal)
	if !h.Valid || h.F["a"].(*eval.BitVal).V != 5 {
		t.Errorf("header not validated/assigned: %v", h)
	}
	if got[1].(*eval.BitVal).V != 2 {
		t.Errorf("out1 = %v, want 2", got[1])
	}
}

func TestParserExtractAndDeparserEmit(t *testing.T) {
	src := `
header Eth { bit<16> etype; }
header Ip { bit<8> ttl; }
struct S { Eth eth; Ip ip; }
parser p(packet pkt, out S hdr) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etype) {
            16w0x800 : ip;
            default : accept;
        }
    }
    state ip {
        pkt.extract(hdr.ip);
        transition accept;
    }
}
control dep(packet pkt, in S hdr) {
    apply {
        pkt.emit(hdr.eth);
        pkt.emit(hdr.ip);
    }
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	in := eval.New(prog, nil, nil)

	ethT := &ast.HeaderType{Name: "Eth", Fields: []ast.Field{{Name: "etype", Type: &ast.BitType{Width: 16}}}}
	ipT := &ast.HeaderType{Name: "Ip", Fields: []ast.Field{{Name: "ttl", Type: &ast.BitType{Width: 8}}}}
	structT := &ast.StructType{Name: "S", Fields: []ast.Field{
		{Name: "eth", Type: ethT}, {Name: "ip", Type: ipT},
	}}

	// IPv4 packet: etype 0x0800, ttl 64.
	pkt := &eval.PacketVal{R: bitstream.NewReader([]byte{0x08, 0x00, 64})}
	hdr := eval.NewValue(structT, eval.ZeroUndef)
	args := []eval.Value{pkt, hdr}
	if err := in.ExecParser(prog.Parser("p"), args); err != nil {
		t.Fatalf("parser: %v", err)
	}
	s := args[1].(*eval.StructVal)
	if !s.F["ip"].(*eval.HeaderVal).Valid {
		t.Fatal("ip header not extracted")
	}
	if ttl := s.F["ip"].(*eval.HeaderVal).F["ttl"].(*eval.BitVal); ttl.V != 64 {
		t.Errorf("ttl = %d, want 64", ttl.V)
	}

	// Non-IP packet: only ethernet extracted.
	pkt2 := &eval.PacketVal{R: bitstream.NewReader([]byte{0x86, 0xDD, 64})}
	hdr2 := eval.NewValue(structT, eval.ZeroUndef)
	args2 := []eval.Value{pkt2, hdr2}
	if err := in.ExecParser(prog.Parser("p"), args2); err != nil {
		t.Fatalf("parser: %v", err)
	}
	if args2[1].(*eval.StructVal).F["ip"].(*eval.HeaderVal).Valid {
		t.Error("ip header should be invalid for etype 0x86DD")
	}

	// Short packet rejects.
	pkt3 := &eval.PacketVal{R: bitstream.NewReader([]byte{0x08})}
	hdr3 := eval.NewValue(structT, eval.ZeroUndef)
	if err := in.ExecParser(prog.Parser("p"), []eval.Value{pkt3, hdr3}); !errors.Is(err, eval.ErrReject) {
		t.Errorf("short packet: err = %v, want ErrReject", err)
	}

	// Deparse the first packet back.
	w := bitstream.NewWriter()
	out := &eval.PacketVal{W: w}
	if err := in.ExecControl(prog.Control("dep"), []eval.Value{out, s}); err != nil {
		t.Fatalf("deparser: %v", err)
	}
	got := w.Bytes()
	want := []byte{0x08, 0x00, 64}
	if len(got) != len(want) {
		t.Fatalf("deparsed %x, want %x", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deparsed %x, want %x", got, want)
		}
	}
}

func TestSwitchStmt(t *testing.T) {
	src := `
control ig(inout bit<8> x) {
    apply {
        switch (x) {
            8w1: { x = 8w10; }
            8w2: { x = 8w20; }
            default: { x = 8w99; }
        }
    }
}`
	if got := run(t, src, nil, bit(8, 2))[0].(*eval.BitVal).V; got != 20 {
		t.Errorf("switch(2): got %d, want 20", got)
	}
	if got := run(t, src, nil, bit(8, 7))[0].(*eval.BitVal).V; got != 99 {
		t.Errorf("switch(7): got %d, want 99", got)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	// The right operand of && must not execute when the left is false.
	src := `
control ig(inout bit<8> x) {
    bool bump(inout bit<8> v) {
        v = v + 8w1;
        return true;
    }
    apply {
        if (x > 8w100 && bump(x)) {
            x = x + 8w0;
        }
    }
}`
	if got := run(t, src, nil, bit(8, 5))[0].(*eval.BitVal).V; got != 5 {
		t.Errorf("short circuit violated: x = %d, want 5", got)
	}
	if got := run(t, src, nil, bit(8, 101))[0].(*eval.BitVal).V; got != 102 {
		t.Errorf("rhs not evaluated: x = %d, want 102", got)
	}
}

// TestArithmeticIdentitiesProperty property-checks interpreter arithmetic
// against direct Go computation across random operands.
func TestArithmeticIdentitiesProperty(t *testing.T) {
	run8 := func(expr string, x, y uint64) uint64 {
		src := `
control ig(inout bit<8> a, inout bit<8> b, inout bit<8> r) {
    apply { r = ` + expr + `; }
}`
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := types.Check(prog); err != nil {
			t.Fatalf("check: %v", err)
		}
		in := eval.New(prog, nil, nil)
		args := []eval.Value{bit(8, x), bit(8, y), bit(8, 0)}
		if err := in.ExecControl(prog.Control("ig"), args); err != nil {
			t.Fatalf("exec: %v", err)
		}
		return args[2].(*eval.BitVal).V
	}
	f := func(xr, yr uint8) bool {
		x, y := uint64(xr), uint64(yr)
		checks := []struct {
			expr string
			want uint64
		}{
			{"a + b", (x + y) & 0xFF},
			{"a - b", (x - y) & 0xFF},
			{"a * b", (x * y) & 0xFF},
			{"a & b", x & y},
			{"a | b", x | y},
			{"a ^ b", x ^ y},
			{"~a", ^x & 0xFF},
			{"-a", (-x) & 0xFF},
			{"(a ++ b)[7:0]", y},
			{"(a ++ b)[15:8]", x},
			{"a |-| b", satSub8(x, y)},
		}
		for _, c := range checks {
			if run8(c.expr, x, y) != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func satSub8(x, y uint64) uint64 {
	if x < y {
		return 0
	}
	return x - y
}

// TestCopyInCopyOutProperty: for random values, calling an action that
// swaps two inout parameters behaves like a Go swap.
func TestCopyInCopyOutProperty(t *testing.T) {
	src := `
control ig(inout bit<8> x, inout bit<8> y) {
    action swap(inout bit<8> a, inout bit<8> b) {
        bit<8> t = a;
        a = b;
        b = t;
    }
    apply { swap(x, y); }
}`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	f := func(xr, yr uint8) bool {
		in := eval.New(prog, nil, nil)
		args := []eval.Value{bit(8, uint64(xr)), bit(8, uint64(yr))}
		if err := in.ExecControl(prog.Control("ig"), args); err != nil {
			return false
		}
		return args[0].(*eval.BitVal).V == uint64(yr) && args[1].(*eval.BitVal).V == uint64(xr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
