package eval

import (
	"errors"
	"fmt"

	"gauntlet/internal/p4/ast"
)

// RuntimeError reports a failure during interpretation. For type-checked
// programs these indicate interpreter bugs or resource limits (e.g. parser
// loops), not program errors.
type RuntimeError struct {
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return "eval: " + e.Msg }

func rtErrorf(format string, args ...any) error {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// ErrReject is returned by ExecParser when the FSM transitions to reject
// (including short packets on extract). Targets drop the packet.
var ErrReject = errors.New("parser: transition to reject")

// Control-flow signals, implemented as sentinel errors.
type returnSignal struct {
	val Value // nil for void returns
}

func (*returnSignal) Error() string { return "return" }

type exitSignal struct{}

func (*exitSignal) Error() string { return "exit" }

// TableEntry is one control-plane match-action entry: exact-match key
// values (one per table key, in order) and an action with its
// control-plane arguments.
type TableEntry struct {
	Key    []uint64
	Action string
	Args   []uint64
}

// TableConfig is the control-plane state of one table.
type TableConfig struct {
	Entries []TableEntry
	// DefaultAction overrides the program's default_action when non-nil.
	DefaultAction *TableEntry
}

// Config maps "<control>.<table>" to table state.
type Config map[string]*TableConfig

// Interp interprets programs. The zero value is not usable; call New.
type Interp struct {
	prog   *ast.Program
	undef  UndefPolicy
	tables Config
	// MaxParserSteps bounds parser FSM execution (loop guard; the paper
	// found a P4C crash caused by a parser loop, §7.1).
	MaxParserSteps int

	// control-scope environment of the control currently executing, used
	// as the parent scope for action/function bodies.
	ctrlEnv  *env
	ctrlName string
	ctrlDecl *ast.ControlDecl
}

// New creates an interpreter for a resolved, type-checked program. undef
// may be nil (defaults to ZeroUndef); cfg may be nil (all tables empty).
func New(prog *ast.Program, undef UndefPolicy, cfg Config) *Interp {
	if undef == nil {
		undef = ZeroUndef
	}
	if cfg == nil {
		cfg = Config{}
	}
	return &Interp{prog: prog, undef: undef, tables: cfg, MaxParserSteps: 1024}
}

// env is a lexical scope chain of name → value bindings.
type env struct {
	parent *env
	names  map[string]Value
}

func newEnv(parent *env) *env { return &env{parent: parent, names: map[string]Value{}} }

func (e *env) get(name string) (Value, bool) {
	for sc := e; sc != nil; sc = sc.parent {
		if v, ok := sc.names[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *env) declare(name string, v Value) { e.names[name] = v }

// set updates name in its defining scope; it must already be declared.
func (e *env) set(name string, v Value) error {
	for sc := e; sc != nil; sc = sc.parent {
		if _, ok := sc.names[name]; ok {
			sc.names[name] = v
			return nil
		}
	}
	return rtErrorf("assignment to undeclared %q", name)
}

// ExecControl runs a control block. args must match the control's
// parameters; entries for out/inout parameters are replaced in the slice
// with the copied-out values. Packet-typed arguments are shared, not
// copied.
func (in *Interp) ExecControl(c *ast.ControlDecl, args []Value) error {
	if len(args) != len(c.Params) {
		return rtErrorf("control %s expects %d args, got %d", c.Name, len(c.Params), len(args))
	}
	scope := newEnv(nil)
	in.bindParams(scope, c.Params, args)
	savedEnv, savedName, savedDecl := in.ctrlEnv, in.ctrlName, in.ctrlDecl
	in.ctrlEnv, in.ctrlName, in.ctrlDecl = scope, c.Name, c
	defer func() { in.ctrlEnv, in.ctrlName, in.ctrlDecl = savedEnv, savedName, savedDecl }()

	for _, l := range c.Locals {
		switch d := l.(type) {
		case *ast.VarDecl:
			var v Value
			if d.Init != nil {
				iv, err := in.evalExpr(scope, d.Init)
				if err != nil {
					return err
				}
				v = iv.Clone()
			} else {
				v = NewValue(d.Type, in.undef)
			}
			scope.declare(d.Name, v)
		case *ast.ConstDecl:
			v, err := in.evalExpr(scope, d.Value)
			if err != nil {
				return err
			}
			scope.declare(d.Name, v.Clone())
		}
	}

	err := in.execBlock(newEnv(scope), c.Apply)
	switch err.(type) {
	case nil:
	case *exitSignal, *returnSignal:
		// exit / return terminate the control normally; copy-out still
		// happens (the paper's clarified exit semantics, §7.2).
		err = nil
	default:
		return err
	}
	copyOutParams(c.Params, args, scope)
	return nil
}

func (in *Interp) bindParams(scope *env, params []ast.Param, args []Value) {
	for i, p := range params {
		if _, isPkt := p.Type.(*ast.PacketType); isPkt {
			scope.declare(p.Name, args[i])
			continue
		}
		switch p.Dir {
		case ast.DirOut:
			scope.declare(p.Name, NewValue(p.Type, in.undef))
		default: // in, inout, none
			scope.declare(p.Name, args[i].Clone())
		}
	}
}

func copyOutParams(params []ast.Param, args []Value, scope *env) {
	for i, p := range params {
		if p.Dir.Writes() {
			v, _ := scope.get(p.Name)
			args[i] = v
		}
	}
}

// ExecParser runs a parser FSM starting at "start". Returns ErrReject on
// transitions to reject (including short extracts).
func (in *Interp) ExecParser(p *ast.ParserDecl, args []Value) error {
	if len(args) != len(p.Params) {
		return rtErrorf("parser %s expects %d args, got %d", p.Name, len(p.Params), len(args))
	}
	scope := newEnv(nil)
	in.bindParams(scope, p.Params, args)

	state := "start"
	steps := 0
	for state != "accept" && state != "reject" {
		steps++
		if steps > in.MaxParserSteps {
			return rtErrorf("parser %s exceeded %d steps (state loop?)", p.Name, in.MaxParserSteps)
		}
		st := p.StateByName(state)
		if st == nil {
			return rtErrorf("parser %s: unknown state %q", p.Name, state)
		}
		senv := newEnv(scope)
		rejected := false
		for _, s := range st.Stmts {
			if err := in.execStmt(senv, s); err != nil {
				if errors.Is(err, ErrReject) {
					rejected = true
					break
				}
				return err
			}
		}
		if rejected {
			state = "reject"
			continue
		}
		next, err := in.transition(senv, st)
		if err != nil {
			return err
		}
		state = next
	}
	if state == "reject" {
		return ErrReject
	}
	copyOutParams(p.Params, args, scope)
	return nil
}

func (in *Interp) transition(senv *env, st *ast.ParserState) (string, error) {
	switch tr := st.Trans.(type) {
	case nil:
		return "accept", nil
	case *ast.TransDirect:
		return tr.Next, nil
	case *ast.TransSelect:
		v, err := in.evalExpr(senv, tr.Expr)
		if err != nil {
			return "", err
		}
		bv, ok := v.(*BitVal)
		if !ok {
			return "", rtErrorf("select on non-bit value %s", v)
		}
		deflt := ""
		for _, c := range tr.Cases {
			if c.Value == nil {
				if deflt == "" {
					deflt = c.Next
				}
				continue
			}
			if c.Value.Val == bv.V {
				return c.Next, nil
			}
		}
		if deflt != "" {
			return deflt, nil
		}
		// No match and no default: reject (P4₁₆ §12.6).
		return "reject", nil
	default:
		return "", rtErrorf("unknown transition %T", st.Trans)
	}
}

func (in *Interp) execBlock(e *env, b *ast.BlockStmt) error {
	if b == nil {
		return nil
	}
	scope := newEnv(e)
	for _, s := range b.Stmts {
		if err := in.execStmt(scope, s); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execStmt(e *env, s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.AssignStmt:
		v, err := in.evalExpr(e, s.RHS)
		if err != nil {
			return err
		}
		return in.assign(e, s.LHS, v.Clone())
	case *ast.VarDeclStmt:
		var v Value
		if s.Init != nil {
			iv, err := in.evalExpr(e, s.Init)
			if err != nil {
				return err
			}
			v = iv.Clone()
		} else {
			v = NewValue(s.Type, in.undef)
		}
		e.declare(s.Name, v)
		return nil
	case *ast.ConstDeclStmt:
		v, err := in.evalExpr(e, s.Value)
		if err != nil {
			return err
		}
		e.declare(s.Name, v.Clone())
		return nil
	case *ast.IfStmt:
		cv, err := in.evalExpr(e, s.Cond)
		if err != nil {
			return err
		}
		b, ok := cv.(*BoolVal)
		if !ok {
			return rtErrorf("if condition is not bool: %s", cv)
		}
		if b.V {
			return in.execBlock(e, s.Then)
		}
		if s.Else != nil {
			return in.execStmt(newEnv(e), s.Else)
		}
		return nil
	case *ast.BlockStmt:
		return in.execBlock(e, s)
	case *ast.CallStmt:
		_, err := in.evalCall(e, s.Call, true)
		return err
	case *ast.ReturnStmt:
		sig := &returnSignal{}
		if s.Value != nil {
			v, err := in.evalExpr(e, s.Value)
			if err != nil {
				return err
			}
			sig.val = v.Clone()
		}
		return sig
	case *ast.ExitStmt:
		return &exitSignal{}
	case *ast.EmptyStmt:
		return nil
	case *ast.SwitchStmt:
		tv, err := in.evalExpr(e, s.Tag)
		if err != nil {
			return err
		}
		tb, ok := tv.(*BitVal)
		if !ok {
			return rtErrorf("switch tag is not a bit value: %s", tv)
		}
		var deflt *ast.BlockStmt
		for i := range s.Cases {
			if s.Cases[i].Labels == nil {
				deflt = s.Cases[i].Body
				continue
			}
			for _, l := range s.Cases[i].Labels {
				lv, err := in.evalExpr(e, l)
				if err != nil {
					return err
				}
				if lb, ok := lv.(*BitVal); ok && lb.V == tb.V {
					return in.execBlock(e, s.Cases[i].Body)
				}
			}
		}
		if deflt != nil {
			return in.execBlock(e, deflt)
		}
		return nil
	default:
		return rtErrorf("unsupported statement %T", s)
	}
}

// assign stores v at the lvalue lhs. Slice assignment merges bits into the
// base lvalue.
func (in *Interp) assign(e *env, lhs ast.Expr, v Value) error {
	switch l := lhs.(type) {
	case *ast.Ident:
		return e.set(l.Name, v)
	case *ast.MemberExpr:
		cont, err := in.evalExpr(e, l.X)
		if err != nil {
			return err
		}
		switch c := cont.(type) {
		case *StructVal:
			if _, ok := c.F[l.Member]; !ok {
				return rtErrorf("struct has no field %q", l.Member)
			}
			c.F[l.Member] = v
			return nil
		case *HeaderVal:
			if _, ok := c.F[l.Member]; !ok {
				return rtErrorf("header has no field %q", l.Member)
			}
			// Field writes are stored regardless of validity; validity
			// gates only deparsing and output comparison. This matches
			// the P4C/BMv2 behaviour the paper's semantics align with.
			c.F[l.Member] = v
			return nil
		default:
			return rtErrorf("member assignment on non-composite %s", cont)
		}
	case *ast.SliceExpr:
		cur, err := in.evalExpr(e, l.X)
		if err != nil {
			return err
		}
		cb, ok := cur.(*BitVal)
		if !ok {
			return rtErrorf("slice assignment on non-bit %s", cur)
		}
		nv, ok := v.(*BitVal)
		if !ok {
			return rtErrorf("slice assignment of non-bit %s", v)
		}
		width := l.Hi - l.Lo + 1
		mask := ast.MaskWidth(^uint64(0), width) << uint(l.Lo)
		merged := (cb.V &^ mask) | (ast.MaskWidth(nv.V, width) << uint(l.Lo))
		return in.assign(e, l.X, &BitVal{Width: cb.Width, V: ast.MaskWidth(merged, cb.Width)})
	default:
		return rtErrorf("assignment to non-lvalue %T", lhs)
	}
}
