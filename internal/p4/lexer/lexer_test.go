package lexer_test

import (
	"testing"

	"gauntlet/internal/p4/lexer"
	"gauntlet/internal/p4/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanBasics(t *testing.T) {
	toks, errs := lexer.ScanAll("control c(inout bit<8> x) { apply { x = x |+| 8w3; } }")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.KwControl, token.IDENT, token.LParen, token.KwInout, token.KwBit,
		token.Lt, token.INTLIT, token.Gt, token.IDENT, token.RParen,
		token.LBrace, token.KwApply, token.LBrace, token.IDENT, token.Assign,
		token.IDENT, token.PlusSat, token.INTLIT, token.Semicolon,
		token.RBrace, token.RBrace, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	toks, errs := lexer.ScanAll("x // line comment\n/* block\ncomment */ y")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(toks) != 3 || toks[0].Lit != "x" || toks[1].Lit != "y" {
		t.Fatalf("comments not skipped: %v", toks)
	}
	_, errs = lexer.ScanAll("/* unterminated")
	if len(errs) == 0 {
		t.Fatal("unterminated block comment not reported")
	}
}

func TestIllegalBytes(t *testing.T) {
	_, errs := lexer.ScanAll("x = `y`;")
	if len(errs) == 0 {
		t.Fatal("backquotes must be illegal")
	}
	_, errs = lexer.ScanAll(string([]byte{0x00, 0xFF}))
	if len(errs) == 0 {
		t.Fatal("binary bytes must be illegal")
	}
}

func TestIntLiterals(t *testing.T) {
	cases := []struct {
		lit   string
		width int
		val   uint64
		err   bool
	}{
		{"42", 0, 42, false},
		{"0x2A", 0, 42, false},
		{"8w255", 8, 255, false},
		{"8w256", 8, 0, false}, // masked to width
		{"4w0xF", 4, 15, false},
		{"65w1", 0, 0, true},  // width out of range
		{"0w1", 0, 0, true},   // width out of range
		{"8wxyz", 0, 0, true}, // malformed value
	}
	for _, tc := range cases {
		w, v, err := lexer.ParseIntLit(tc.lit)
		if tc.err {
			if err == nil {
				t.Errorf("ParseIntLit(%q) succeeded, want error", tc.lit)
			}
			continue
		}
		if err != nil || w != tc.width || v != tc.val {
			t.Errorf("ParseIntLit(%q) = (%d, %d, %v), want (%d, %d)", tc.lit, w, v, err, tc.width, tc.val)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, _ := lexer.ScanAll("x\n  y")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("x at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("y at %v, want 2:3", toks[1].Pos)
	}
}
