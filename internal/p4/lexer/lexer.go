// Package lexer implements the scanner for the P4₁₆ subset. It produces the
// token stream consumed by the parser and is the first of McKeeman's levels
// (Table 1 of the paper) an input must pass.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"gauntlet/internal/p4/token"
)

// Error is a lexical error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans P4 source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []*Error
}

// New creates a lexer over the given source text.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

// ScanAll scans the entire input, returning all tokens up to and including
// EOF, plus any lexical errors.
func ScanAll(src string) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.errs
		}
	}
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errs = append(l.errs, &Error{Pos: start, Msg: "unterminated block comment"})
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		return l.scanIdent(pos)
	case isDigit(c):
		return l.scanNumber(pos)
	}
	l.advance()
	two := func(next byte, ifTwo, ifOne token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: ifTwo, Pos: pos}
		}
		return token.Token{Kind: ifOne, Pos: pos}
	}
	switch c {
	case '=':
		return two('=', token.Eq, token.Assign)
	case '+':
		return two('+', token.PlusPlus, token.Plus)
	case '-':
		return token.Token{Kind: token.Minus, Pos: pos}
	case '*':
		return token.Token{Kind: token.Star, Pos: pos}
	case '/':
		return token.Token{Kind: token.Slash, Pos: pos}
	case '%':
		return token.Token{Kind: token.Percent, Pos: pos}
	case '&':
		return two('&', token.AndAnd, token.Amp)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.OrOr, Pos: pos}
		}
		if l.peek() == '+' && l.peek2() == '|' {
			l.advance()
			l.advance()
			return token.Token{Kind: token.PlusSat, Pos: pos}
		}
		if l.peek() == '-' && l.peek2() == '|' {
			l.advance()
			l.advance()
			return token.Token{Kind: token.MinusSat, Pos: pos}
		}
		return token.Token{Kind: token.Pipe, Pos: pos}
	case '^':
		return token.Token{Kind: token.Caret, Pos: pos}
	case '~':
		return token.Token{Kind: token.Tilde, Pos: pos}
	case '!':
		return two('=', token.NotEq, token.Bang)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.Shl, Pos: pos}
		}
		return two('=', token.Le, token.Lt)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.Shr, Pos: pos}
		}
		return two('=', token.Ge, token.Gt)
	case '(':
		return token.Token{Kind: token.LParen, Pos: pos}
	case ')':
		return token.Token{Kind: token.RParen, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBrace, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBrace, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBracket, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBracket, Pos: pos}
	case ',':
		return token.Token{Kind: token.Comma, Pos: pos}
	case ';':
		return token.Token{Kind: token.Semicolon, Pos: pos}
	case ':':
		return token.Token{Kind: token.Colon, Pos: pos}
	case '.':
		return token.Token{Kind: token.Dot, Pos: pos}
	case '?':
		return token.Token{Kind: token.Question, Pos: pos}
	case '@':
		return token.Token{Kind: token.At, Pos: pos}
	}
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf("illegal character %q", c)})
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	lit := l.src[start:l.off]
	if k, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: k, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

// scanNumber scans decimal, hexadecimal (0x...), and width-prefixed
// (e.g. 8w255, 4w0xF) integer literals.
func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	// Width prefix: digits 'w' number.
	if l.peek() == 'w' {
		l.advance()
		if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			for l.off < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		return token.Token{Kind: token.INTLIT, Lit: l.src[start:l.off], Pos: pos}
	}
	// Hexadecimal.
	if l.src[start] == '0' && (l.peek() == 'x' || l.peek() == 'X') && l.off == start+1 {
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	}
	return token.Token{Kind: token.INTLIT, Lit: l.src[start:l.off], Pos: pos}
}

// ParseIntLit decodes an INTLIT literal into (width, value). Width 0 means
// an unsized literal. Returns an error for malformed or overflowing
// literals (width > 64 is rejected here; the type checker re-checks).
func ParseIntLit(lit string) (width int, val uint64, err error) {
	if i := strings.IndexByte(lit, 'w'); i >= 0 {
		w, werr := strconv.Atoi(lit[:i])
		if werr != nil {
			return 0, 0, fmt.Errorf("bad width in literal %q", lit)
		}
		if w <= 0 || w > 64 {
			return 0, 0, fmt.Errorf("literal width %d out of range [1,64]", w)
		}
		v, verr := parseUint(lit[i+1:])
		if verr != nil {
			return 0, 0, verr
		}
		if w < 64 && v >= 1<<uint(w) {
			// P4 masks oversized literal values to the width.
			v &= (1 << uint(w)) - 1
		}
		return w, v, nil
	}
	v, verr := parseUint(lit)
	return 0, v, verr
}

func parseUint(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseUint(s[2:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("bad hex literal %q", s)
		}
		return v, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer literal %q", s)
	}
	return v, nil
}
