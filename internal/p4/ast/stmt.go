package ast

import "gauntlet/internal/p4/token"

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// AssignStmt is "lhs = rhs;". LHS must satisfy IsLValue.
type AssignStmt struct {
	LHS Expr
	RHS Expr
}

// VarDeclStmt declares a local variable, optionally initialized. Without an
// initializer the variable is undefined (reads yield target-dependent
// values; the symbolic interpreter models them as fresh symbols, §6.2).
type VarDeclStmt struct {
	DeclPos token.Pos
	Name    string
	Type    Type
	Init    Expr // may be nil
}

// ConstDeclStmt declares a local compile-time constant.
type ConstDeclStmt struct {
	DeclPos token.Pos
	Name    string
	Type    Type
	Value   Expr
}

// IfStmt is "if (cond) then else els". Else may be nil, *BlockStmt, or
// *IfStmt (else-if chain).
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt
}

// BlockStmt is a brace-delimited statement sequence with its own scope.
type BlockStmt struct {
	LBrace token.Pos
	Stmts  []Stmt
}

// CallStmt is an expression statement wrapping a call: foo(x); t.apply();
// h.setValid();.
type CallStmt struct {
	Call *CallExpr
}

// ReturnStmt returns from the enclosing action or function. Value is nil
// for void returns.
type ReturnStmt struct {
	RetPos token.Pos
	Value  Expr
}

// ExitStmt terminates the enclosing control block immediately (P4₁₆ §12.5).
// Per the specification clarification the paper triggered (§7.2, Fig. 5f),
// exit still respects copy-in/copy-out for enclosing calls.
type ExitStmt struct {
	ExitPos token.Pos
}

// EmptyStmt is a lone semicolon (appears in pass outputs).
type EmptyStmt struct {
	SemiPos token.Pos
}

// SwitchStmt switches on a bit-typed expression with constant labels.
// A nil Labels slice denotes the default case. Cases do not fall through.
type SwitchStmt struct {
	SwitchPos token.Pos
	Tag       Expr
	Cases     []SwitchCase
}

// SwitchCase is one arm of a SwitchStmt.
type SwitchCase struct {
	Labels []Expr // nil for default
	Body   *BlockStmt
}

func (*AssignStmt) stmtNode()    {}
func (*VarDeclStmt) stmtNode()   {}
func (*ConstDeclStmt) stmtNode() {}
func (*IfStmt) stmtNode()        {}
func (*BlockStmt) stmtNode()     {}
func (*CallStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()    {}
func (*ExitStmt) stmtNode()      {}
func (*EmptyStmt) stmtNode()     {}
func (*SwitchStmt) stmtNode()    {}

// Pos returns the source position of the node (zero for generated nodes).
func (s *AssignStmt) Pos() token.Pos    { return s.LHS.Pos() }
func (s *VarDeclStmt) Pos() token.Pos   { return s.DeclPos }
func (s *ConstDeclStmt) Pos() token.Pos { return s.DeclPos }
func (s *IfStmt) Pos() token.Pos        { return s.IfPos }
func (s *BlockStmt) Pos() token.Pos     { return s.LBrace }
func (s *CallStmt) Pos() token.Pos      { return s.Call.Pos() }
func (s *ReturnStmt) Pos() token.Pos    { return s.RetPos }
func (s *ExitStmt) Pos() token.Pos      { return s.ExitPos }
func (s *EmptyStmt) Pos() token.Pos     { return s.SemiPos }
func (s *SwitchStmt) Pos() token.Pos    { return s.SwitchPos }

// Assign creates an assignment statement.
func Assign(lhs, rhs Expr) *AssignStmt { return &AssignStmt{LHS: lhs, RHS: rhs} }

// Block creates a block statement from the given statements.
func Block(stmts ...Stmt) *BlockStmt { return &BlockStmt{Stmts: stmts} }

// If creates an if statement with an optional else branch.
func If(cond Expr, then *BlockStmt, els Stmt) *IfStmt {
	return &IfStmt{Cond: cond, Then: then, Else: els}
}
