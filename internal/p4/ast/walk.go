package ast

import "fmt"

// Inspect walks the expression tree rooted at e in pre-order, calling f for
// each node. If f returns false the node's children are skipped.
func Inspect(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch e := e.(type) {
	case *Ident, *IntLit, *BoolLit:
	case *UnaryExpr:
		Inspect(e.X, f)
	case *BinaryExpr:
		Inspect(e.X, f)
		Inspect(e.Y, f)
	case *MuxExpr:
		Inspect(e.Cond, f)
		Inspect(e.Then, f)
		Inspect(e.Else, f)
	case *CastExpr:
		Inspect(e.X, f)
	case *MemberExpr:
		Inspect(e.X, f)
	case *SliceExpr:
		Inspect(e.X, f)
	case *CallExpr:
		Inspect(e.Func, f)
		for _, a := range e.Args {
			Inspect(a, f)
		}
	default:
		panic(fmt.Sprintf("ast.Inspect: unknown expression %T", e))
	}
}

// InspectStmt walks the statement tree in pre-order, calling fs for each
// statement (children skipped when fs returns false) and fe for every
// expression contained in visited statements. Either callback may be nil.
func InspectStmt(s Stmt, fs func(Stmt) bool, fe func(Expr) bool) {
	if s == nil {
		return
	}
	if fs != nil && !fs(s) {
		return
	}
	expr := func(e Expr) {
		if fe != nil && e != nil {
			Inspect(e, fe)
		}
	}
	switch s := s.(type) {
	case *AssignStmt:
		expr(s.LHS)
		expr(s.RHS)
	case *VarDeclStmt:
		expr(s.Init)
	case *ConstDeclStmt:
		expr(s.Value)
	case *IfStmt:
		expr(s.Cond)
		InspectStmt(s.Then, fs, fe)
		InspectStmt(s.Else, fs, fe)
	case *BlockStmt:
		for _, st := range s.Stmts {
			InspectStmt(st, fs, fe)
		}
	case *CallStmt:
		expr(s.Call)
	case *ReturnStmt:
		expr(s.Value)
	case *ExitStmt, *EmptyStmt:
	case *SwitchStmt:
		expr(s.Tag)
		for _, c := range s.Cases {
			for _, l := range c.Labels {
				expr(l)
			}
			InspectStmt(c.Body, fs, fe)
		}
	default:
		panic(fmt.Sprintf("ast.InspectStmt: unknown statement %T", s))
	}
}

// RewriteExpr rebuilds an expression bottom-up, applying f to every node
// after its children have been rewritten. f must return a non-nil
// replacement (possibly the node itself). The input is not mutated if f
// always returns fresh nodes; passes conventionally clone first.
func RewriteExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Ident, *IntLit, *BoolLit:
	case *UnaryExpr:
		x.X = RewriteExpr(x.X, f)
	case *BinaryExpr:
		x.X = RewriteExpr(x.X, f)
		x.Y = RewriteExpr(x.Y, f)
	case *MuxExpr:
		x.Cond = RewriteExpr(x.Cond, f)
		x.Then = RewriteExpr(x.Then, f)
		x.Else = RewriteExpr(x.Else, f)
	case *CastExpr:
		x.X = RewriteExpr(x.X, f)
	case *MemberExpr:
		x.X = RewriteExpr(x.X, f)
	case *SliceExpr:
		x.X = RewriteExpr(x.X, f)
	case *CallExpr:
		x.Func = RewriteExpr(x.Func, f)
		for i, a := range x.Args {
			x.Args[i] = RewriteExpr(a, f)
		}
	default:
		panic(fmt.Sprintf("ast.RewriteExpr: unknown expression %T", e))
	}
	return f(e)
}

// RewriteStmt rebuilds a statement tree bottom-up. fe (if non-nil) rewrites
// every contained expression; fs (if non-nil) maps each statement to a
// replacement slice, allowing deletion (empty slice) and expansion. A nil
// fs keeps statements unchanged.
func RewriteStmt(s Stmt, fs func(Stmt) []Stmt, fe func(Expr) Expr) []Stmt {
	if s == nil {
		return nil
	}
	rw := func(e Expr) Expr {
		if fe == nil || e == nil {
			return e
		}
		return RewriteExpr(e, fe)
	}
	switch x := s.(type) {
	case *AssignStmt:
		x.LHS = rw(x.LHS)
		x.RHS = rw(x.RHS)
	case *VarDeclStmt:
		x.Init = rw(x.Init)
	case *ConstDeclStmt:
		x.Value = rw(x.Value)
	case *IfStmt:
		x.Cond = rw(x.Cond)
		x.Then = RewriteBlock(x.Then, fs, fe)
		if x.Else != nil {
			repl := RewriteStmt(x.Else, fs, fe)
			switch len(repl) {
			case 0:
				x.Else = nil
			case 1:
				x.Else = repl[0]
			default:
				x.Else = &BlockStmt{Stmts: repl}
			}
		}
	case *BlockStmt:
		b := RewriteBlock(x, fs, fe)
		if fs != nil {
			return fs(b)
		}
		return []Stmt{b}
	case *CallStmt:
		x.Call = rw(x.Call).(*CallExpr)
	case *ReturnStmt:
		x.Value = rw(x.Value)
	case *ExitStmt, *EmptyStmt:
	case *SwitchStmt:
		x.Tag = rw(x.Tag)
		for i := range x.Cases {
			for j, l := range x.Cases[i].Labels {
				x.Cases[i].Labels[j] = rw(l)
			}
			x.Cases[i].Body = RewriteBlock(x.Cases[i].Body, fs, fe)
		}
	default:
		panic(fmt.Sprintf("ast.RewriteStmt: unknown statement %T", s))
	}
	if fs != nil {
		return fs(s)
	}
	return []Stmt{s}
}

// RewriteBlock applies RewriteStmt to every statement of a block, splicing
// replacement slices in place. Nil-safe.
func RewriteBlock(b *BlockStmt, fs func(Stmt) []Stmt, fe func(Expr) Expr) *BlockStmt {
	if b == nil {
		return nil
	}
	var out []Stmt
	for _, s := range b.Stmts {
		// Avoid infinite recursion: nested blocks are handled by the
		// BlockStmt case of RewriteStmt which recurses via RewriteBlock.
		out = append(out, RewriteStmt(s, fs, fe)...)
	}
	b.Stmts = out
	return b
}

// RewriteControl rewrites a control's apply block and every action and
// function body in place.
func RewriteControl(c *ControlDecl, fs func(Stmt) []Stmt, fe func(Expr) Expr) {
	for _, l := range c.Locals {
		switch d := l.(type) {
		case *ActionDecl:
			d.Body = RewriteBlock(d.Body, fs, fe)
		case *FunctionDecl:
			d.Body = RewriteBlock(d.Body, fs, fe)
		case *VarDecl:
			if fe != nil && d.Init != nil {
				d.Init = RewriteExpr(d.Init, fe)
			}
		case *TableDecl:
			if fe != nil {
				for i := range d.Keys {
					d.Keys[i].Expr = RewriteExpr(d.Keys[i].Expr, fe)
				}
			}
		}
	}
	c.Apply = RewriteBlock(c.Apply, fs, fe)
}

// ContainsCall reports whether the expression contains any call.
func ContainsCall(e Expr) bool {
	found := false
	Inspect(e, func(x Expr) bool {
		if _, ok := x.(*CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// FreeIdents collects the names referenced by an expression, excluding
// member names and call targets' member components.
func FreeIdents(e Expr, into map[string]bool) {
	Inspect(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok {
			into[id.Name] = true
		}
		return true
	})
}
