// Package ast defines the abstract syntax tree for the P4₁₆ subset used by
// Gauntlet: headers, structs, bit<N> and bool types, controls, parsers,
// actions, tables, functions with in/inout/out parameter directions, and the
// statement and expression grammar the paper's programs exercise.
//
// All nodes are immutable by convention once handed to another component;
// compiler passes transform deep clones (see Clone). Structural identity of
// whole programs is defined by the printed form (see Fingerprint in the
// printer package), matching the paper's "skip hash-identical pass outputs"
// behaviour (§5.2).
package ast

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all P4 type representations.
//
// NamedType values appear in freshly parsed or generated programs; the type
// checker resolves them to their declared header/struct/typedef types. All
// semantic components (evaluator, symbolic interpreter) require resolved
// types.
type Type interface {
	typeNode()
	// String renders the type in P4 source syntax.
	String() string
	// Equal reports structural equality, resolving nothing.
	Equal(Type) bool
}

// BitType is bit<Width>, an unsigned bit vector. Width is limited to 64 in
// this reproduction (checked by the type checker); the paper's programs use
// widths up to 48.
type BitType struct {
	Width int
}

// BoolType is the P4 bool type.
type BoolType struct{}

// VoidType is the return type of void functions and actions.
type VoidType struct{}

// HeaderType is a declared header type: an ordered list of bit-typed fields
// plus a validity bit manipulated via setValid/setInvalid/isValid.
type HeaderType struct {
	Name   string
	Fields []Field
}

// StructType is a declared struct type: an ordered list of fields of any
// type (including nested headers and structs).
type StructType struct {
	Name   string
	Fields []Field
}

// NamedType is an unresolved reference to a declared type. The type checker
// replaces these with the declared HeaderType/StructType/underlying type.
type NamedType struct {
	Name string
}

// PacketType is the builtin packet type (the subset's merger of P4's
// packet_in and packet_out). Parser parameters of this type support
// pkt.extract(hdr); deparser control parameters support pkt.emit(hdr).
type PacketType struct{}

// UnsizedType is the internal type of integer literals that have not yet
// received a contextual width (P4's arbitrary-precision int). It never
// appears in declarations; the type checker eliminates it by sizing
// literals from context.
type UnsizedType struct {
	Val uint64
}

// Field is a single field of a header or struct.
type Field struct {
	Name string
	Type Type
}

func (*BitType) typeNode()     {}
func (*BoolType) typeNode()    {}
func (*VoidType) typeNode()    {}
func (*HeaderType) typeNode()  {}
func (*StructType) typeNode()  {}
func (*NamedType) typeNode()   {}
func (*UnsizedType) typeNode() {}
func (*PacketType) typeNode()  {}

// String renders the packet type keyword.
func (t *PacketType) String() string { return "packet" }

// Equal reports whether o is also the packet type.
func (t *PacketType) Equal(o Type) bool {
	_, ok := o.(*PacketType)
	return ok
}

// String renders the abstract integer type.
func (t *UnsizedType) String() string { return "int" }

// Equal reports whether o is also an unsized integer type.
func (t *UnsizedType) Equal(o Type) bool {
	_, ok := o.(*UnsizedType)
	return ok
}

// String renders the type in P4 source syntax.
func (t *BitType) String() string { return fmt.Sprintf("bit<%d>", t.Width) }

// String renders the type in P4 source syntax.
func (t *BoolType) String() string { return "bool" }

// String renders the type in P4 source syntax.
func (t *VoidType) String() string { return "void" }

// String renders the header type by name (declared types are referenced by
// name in source positions).
func (t *HeaderType) String() string { return t.Name }

// String renders the struct type by name.
func (t *StructType) String() string { return t.Name }

// String renders the unresolved type reference.
func (t *NamedType) String() string { return t.Name }

// Equal reports structural equality with another type.
func (t *BitType) Equal(o Type) bool {
	b, ok := o.(*BitType)
	return ok && b.Width == t.Width
}

// Equal reports structural equality with another type.
func (t *BoolType) Equal(o Type) bool {
	_, ok := o.(*BoolType)
	return ok
}

// Equal reports structural equality with another type.
func (t *VoidType) Equal(o Type) bool {
	_, ok := o.(*VoidType)
	return ok
}

// Equal reports equality by declared name; header types are nominal in P4.
func (t *HeaderType) Equal(o Type) bool {
	h, ok := o.(*HeaderType)
	return ok && h.Name == t.Name
}

// Equal reports equality by declared name; struct types are nominal in P4.
func (t *StructType) Equal(o Type) bool {
	s, ok := o.(*StructType)
	return ok && s.Name == t.Name
}

// Equal reports whether o names the same type (or is the resolved type with
// the same name), so comparisons keep working mid-resolution.
func (t *NamedType) Equal(o Type) bool {
	switch o := o.(type) {
	case *NamedType:
		return o.Name == t.Name
	case *HeaderType:
		return o.Name == t.Name
	case *StructType:
		return o.Name == t.Name
	}
	return false
}

// FieldByName returns the header field with the given name.
func (t *HeaderType) FieldByName(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// FieldByName returns the struct field with the given name.
func (t *StructType) FieldByName(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// BitWidth returns the total bit width of a type: the declared width for
// bit<N>, 1 for bool (as packed), and the sum of field widths (plus nothing
// for the validity bit, which is out-of-band) for headers and structs.
func BitWidth(t Type) int {
	switch t := t.(type) {
	case *BitType:
		return t.Width
	case *BoolType:
		return 1
	case *HeaderType:
		w := 0
		for _, f := range t.Fields {
			w += BitWidth(f.Type)
		}
		return w
	case *StructType:
		w := 0
		for _, f := range t.Fields {
			w += BitWidth(f.Type)
		}
		return w
	default:
		return 0
	}
}

// CloneType deep-copies a type. Declared types share field slices safely
// because fields are never mutated after declaration, but we copy anyway to
// preserve the passes-transform-clones discipline.
func CloneType(t Type) Type {
	switch t := t.(type) {
	case nil:
		return nil
	case *BitType:
		return &BitType{Width: t.Width}
	case *BoolType:
		return &BoolType{}
	case *VoidType:
		return &VoidType{}
	case *PacketType:
		return &PacketType{}
	case *NamedType:
		return &NamedType{Name: t.Name}
	case *HeaderType:
		return &HeaderType{Name: t.Name, Fields: cloneFields(t.Fields)}
	case *StructType:
		return &StructType{Name: t.Name, Fields: cloneFields(t.Fields)}
	default:
		panic(fmt.Sprintf("ast.CloneType: unknown type %T", t))
	}
}

func cloneFields(fs []Field) []Field {
	out := make([]Field, len(fs))
	for i, f := range fs {
		out[i] = Field{Name: f.Name, Type: CloneType(f.Type)}
	}
	return out
}

// Direction is a parameter direction (P4₁₆ §6.7 copy-in/copy-out calling
// convention). DirNone is used for action "data plane" parameters bound by
// the control plane.
type Direction int

// Parameter directions.
const (
	DirNone Direction = iota
	DirIn
	DirOut
	DirInOut
)

// String renders the direction keyword ("" for DirNone).
func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	default:
		return ""
	}
}

// Reads reports whether the caller's argument value is copied in.
func (d Direction) Reads() bool { return d == DirIn || d == DirInOut || d == DirNone }

// Writes reports whether the parameter is copied back out on return.
func (d Direction) Writes() bool { return d == DirOut || d == DirInOut }

// Param is a parameter of a control, parser, action, or function.
type Param struct {
	Dir  Direction
	Name string
	Type Type
}

// String renders the parameter in P4 syntax, e.g. "inout bit<8> x".
func (p Param) String() string {
	var b strings.Builder
	if d := p.Dir.String(); d != "" {
		b.WriteString(d)
		b.WriteByte(' ')
	}
	b.WriteString(p.Type.String())
	b.WriteByte(' ')
	b.WriteString(p.Name)
	return b.String()
}
