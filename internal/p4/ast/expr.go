package ast

import (
	"fmt"

	"gauntlet/internal/p4/token"
)

// Node is the interface implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a reference to a named entity (variable, parameter, table,
// action, function, or parser state).
type Ident struct {
	NamePos token.Pos
	Name    string
}

// IntLit is an integer literal. Width 0 denotes an unsized integer constant
// (P4's arbitrary-precision int literals); otherwise the literal is
// bit<Width> with value Val (masked to Width bits).
type IntLit struct {
	LitPos token.Pos
	Width  int
	Val    uint64
}

// BoolLit is true or false.
type BoolLit struct {
	LitPos token.Pos
	Val    bool
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	OpNeg    UnaryOp = iota // -x  (two's complement negation)
	OpLNot                  // !x  (boolean not)
	OpBitNot                // ~x  (bitwise complement)
)

// String renders the operator symbol.
func (op UnaryOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpLNot:
		return "!"
	case OpBitNot:
		return "~"
	default:
		return fmt.Sprintf("UnaryOp(%d)", int(op))
	}
}

// UnaryExpr applies a unary operator to an operand.
type UnaryExpr struct {
	OpPos token.Pos
	Op    UnaryOp
	X     Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators. Comparison and logical operators yield bool; the rest
// yield the (common) operand bit type. OpConcat yields the summed width.
const (
	OpAdd    BinaryOp = iota // +
	OpSub                    // -
	OpMul                    // *
	OpSatAdd                 // |+|
	OpSatSub                 // |-|
	OpBitAnd                 // &
	OpBitOr                  // |
	OpBitXor                 // ^
	OpShl                    // <<
	OpShr                    // >>  (logical; bit<N> is unsigned)
	OpEq                     // ==
	OpNe                     // !=
	OpLt                     // <
	OpLe                     // <=
	OpGt                     // >
	OpGe                     // >=
	OpLAnd                   // &&
	OpLOr                    // ||
	OpConcat                 // ++
)

var binaryOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpSatAdd: "|+|", OpSatSub: "|-|",
	OpBitAnd: "&", OpBitOr: "|", OpBitXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpLAnd: "&&", OpLOr: "||", OpConcat: "++",
}

// String renders the operator symbol.
func (op BinaryOp) String() string {
	if int(op) < len(binaryOpNames) {
		return binaryOpNames[op]
	}
	return fmt.Sprintf("BinaryOp(%d)", int(op))
}

// IsComparison reports whether the operator yields bool from bit operands.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IsLogical reports whether the operator takes and yields bool.
func (op BinaryOp) IsLogical() bool { return op == OpLAnd || op == OpLOr }

// BinaryExpr applies a binary operator. && and || are short-circuiting,
// which matters for side-effect ordering of method calls in operands.
type BinaryExpr struct {
	OpPos token.Pos
	Op    BinaryOp
	X, Y  Expr
}

// MuxExpr is the conditional expression (cond ? then : else).
type MuxExpr struct {
	QPos       token.Pos
	Cond       Expr
	Then, Else Expr
}

// CastExpr is an explicit cast (T) x between bit widths or bool/bit<1>.
type CastExpr struct {
	CastPos token.Pos
	To      Type
	X       Expr
}

// MemberExpr selects a field or method of a composite value: hdr.a,
// h.eth.src_addr, h.h.setValid, t.apply.
type MemberExpr struct {
	X      Expr
	Member string
}

// SliceExpr is a bit slice x[Hi:Lo] with compile-time constant bounds,
// selecting bits Hi..Lo inclusive (width Hi-Lo+1).
type SliceExpr struct {
	X      Expr
	Hi, Lo int
}

// CallExpr calls a function, action, or method (t.apply(), h.setValid(),
// h.isValid()). Func is an Ident or MemberExpr.
type CallExpr struct {
	Func Expr
	Args []Expr
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*MuxExpr) exprNode()    {}
func (*CastExpr) exprNode()   {}
func (*MemberExpr) exprNode() {}
func (*SliceExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}

// Pos returns the source position of the node (zero for generated nodes).
func (e *Ident) Pos() token.Pos      { return e.NamePos }
func (e *IntLit) Pos() token.Pos     { return e.LitPos }
func (e *BoolLit) Pos() token.Pos    { return e.LitPos }
func (e *UnaryExpr) Pos() token.Pos  { return e.OpPos }
func (e *BinaryExpr) Pos() token.Pos { return e.X.Pos() }
func (e *MuxExpr) Pos() token.Pos    { return e.Cond.Pos() }
func (e *CastExpr) Pos() token.Pos   { return e.CastPos }
func (e *MemberExpr) Pos() token.Pos { return e.X.Pos() }
func (e *SliceExpr) Pos() token.Pos  { return e.X.Pos() }
func (e *CallExpr) Pos() token.Pos   { return e.Func.Pos() }

// N creates an identifier with no position, for programmatic construction.
func N(name string) *Ident { return &Ident{Name: name} }

// Num creates a sized integer literal bit<width> with the given value.
func Num(width int, val uint64) *IntLit {
	return &IntLit{Width: width, Val: MaskWidth(val, width)}
}

// Bool creates a boolean literal.
func Bool(v bool) *BoolLit { return &BoolLit{Val: v} }

// Bin creates a binary expression.
func Bin(op BinaryOp, x, y Expr) *BinaryExpr { return &BinaryExpr{Op: op, X: x, Y: y} }

// Member creates a field selection x.name.
func Member(x Expr, name string) *MemberExpr { return &MemberExpr{X: x, Member: name} }

// Call creates a call expression.
func Call(fn Expr, args ...Expr) *CallExpr { return &CallExpr{Func: fn, Args: args} }

// MaskWidth truncates v to the low width bits (width 0 or >= 64 is identity).
func MaskWidth(v uint64, width int) uint64 {
	if width <= 0 || width >= 64 {
		return v
	}
	return v & ((1 << uint(width)) - 1)
}

// IsLValue reports whether e is a syntactically valid assignment target:
// an identifier, a member chain, or a slice of one.
func IsLValue(e Expr) bool {
	switch e := e.(type) {
	case *Ident:
		return true
	case *MemberExpr:
		return IsLValue(e.X)
	case *SliceExpr:
		return IsLValue(e.X)
	}
	return false
}

// RootIdent returns the base identifier of an lvalue chain (hdr in
// hdr.h.a[3:0]) or nil if e is not rooted in an identifier.
func RootIdent(e Expr) *Ident {
	for {
		switch x := e.(type) {
		case *Ident:
			return x
		case *MemberExpr:
			e = x.X
		case *SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
