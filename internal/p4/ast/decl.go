package ast

import "gauntlet/internal/p4/token"

// Decl is the interface implemented by all top-level and control-local
// declarations.
type Decl interface {
	Node
	declNode()
	// DeclName returns the declared name.
	DeclName() string
}

// HeaderDecl declares a header type.
type HeaderDecl struct {
	DeclPos token.Pos
	Name    string
	Fields  []Field
}

// StructDecl declares a struct type.
type StructDecl struct {
	DeclPos token.Pos
	Name    string
	Fields  []Field
}

// TypedefDecl declares a type alias.
type TypedefDecl struct {
	DeclPos token.Pos
	Name    string
	Type    Type
}

// ConstDecl declares a top-level compile-time constant.
type ConstDecl struct {
	DeclPos token.Pos
	Name    string
	Type    Type
	Value   Expr
}

// ActionDecl declares an action. Directionless parameters are bound by the
// control plane (table entries); directioned parameters use
// copy-in/copy-out like functions.
type ActionDecl struct {
	DeclPos token.Pos
	Name    string
	Params  []Param
	Body    *BlockStmt
}

// FunctionDecl declares a function with a return type. Functions are
// inlined by the InlineFunctions pass.
type FunctionDecl struct {
	DeclPos token.Pos
	Name    string
	Return  Type
	Params  []Param
	Body    *BlockStmt
}

// MatchKind is the table key match kind. Only exact matching is supported
// (the paper excludes LPM and ternary, §8).
type MatchKind int

// Match kinds.
const (
	MatchExact MatchKind = iota
)

// String renders the match kind keyword.
func (m MatchKind) String() string { return "exact" }

// TableKey is one key of a table: an expression matched against entries.
type TableKey struct {
	Expr  Expr
	Match MatchKind
}

// ActionRef references an action in a table's action list or as its default
// action, with optional compile-time arguments for the default action.
type ActionRef struct {
	Name string
	Args []Expr
}

// TableDecl declares a match-action table. Keys may be empty (a table that
// always runs its default action unless the control plane sets one).
type TableDecl struct {
	DeclPos token.Pos
	Name    string
	Keys    []TableKey
	Actions []ActionRef
	Default *ActionRef // nil means NoAction
}

// VarDecl is a control-local variable declaration (outside apply).
type VarDecl struct {
	DeclPos token.Pos
	Name    string
	Type    Type
	Init    Expr // may be nil
}

// ControlDecl declares a control block: parameters, local declarations
// (variables, actions, tables), and the apply body.
type ControlDecl struct {
	DeclPos token.Pos
	Name    string
	Params  []Param
	Locals  []Decl
	Apply   *BlockStmt
}

// ParserState is one state of a parser FSM. Transition is nil for states
// that implicitly transition to "accept" (only generated internally), a
// *TransDirect, or a *TransSelect.
type ParserState struct {
	DeclPos token.Pos
	Name    string
	Stmts   []Stmt
	Trans   Transition
}

// Transition is a parser state transition.
type Transition interface {
	transitionNode()
}

// TransDirect unconditionally transitions to the named state ("accept" and
// "reject" are built in).
type TransDirect struct {
	Next string
}

// TransSelect branches on an expression: the first case whose value equals
// the expression is taken; a nil Value denotes the default case.
type TransSelect struct {
	Expr  Expr
	Cases []SelectCase
}

// SelectCase is one arm of a select transition.
type SelectCase struct {
	Value *IntLit // nil for default
	Next  string
}

func (*TransDirect) transitionNode() {}
func (*TransSelect) transitionNode() {}

// ParserDecl declares a parser: parameters and a set of states starting at
// "start".
type ParserDecl struct {
	DeclPos token.Pos
	Name    string
	Params  []Param
	States  []ParserState
}

// Instantiation is the package instantiation binding programmable blocks to
// the target architecture: Package(Args...) Name;. Args name the declared
// parsers/controls in package-slot order.
type Instantiation struct {
	DeclPos token.Pos
	Package string
	Args    []string
	Name    string
}

func (*HeaderDecl) declNode()    {}
func (*StructDecl) declNode()    {}
func (*TypedefDecl) declNode()   {}
func (*ConstDecl) declNode()     {}
func (*ActionDecl) declNode()    {}
func (*FunctionDecl) declNode()  {}
func (*TableDecl) declNode()     {}
func (*VarDecl) declNode()       {}
func (*ControlDecl) declNode()   {}
func (*ParserDecl) declNode()    {}
func (*Instantiation) declNode() {}

// DeclName returns the declared name.
func (d *HeaderDecl) DeclName() string    { return d.Name }
func (d *StructDecl) DeclName() string    { return d.Name }
func (d *TypedefDecl) DeclName() string   { return d.Name }
func (d *ConstDecl) DeclName() string     { return d.Name }
func (d *ActionDecl) DeclName() string    { return d.Name }
func (d *FunctionDecl) DeclName() string  { return d.Name }
func (d *TableDecl) DeclName() string     { return d.Name }
func (d *VarDecl) DeclName() string       { return d.Name }
func (d *ControlDecl) DeclName() string   { return d.Name }
func (d *ParserDecl) DeclName() string    { return d.Name }
func (d *Instantiation) DeclName() string { return d.Name }

// Pos returns the source position of the node (zero for generated nodes).
func (d *HeaderDecl) Pos() token.Pos    { return d.DeclPos }
func (d *StructDecl) Pos() token.Pos    { return d.DeclPos }
func (d *TypedefDecl) Pos() token.Pos   { return d.DeclPos }
func (d *ConstDecl) Pos() token.Pos     { return d.DeclPos }
func (d *ActionDecl) Pos() token.Pos    { return d.DeclPos }
func (d *FunctionDecl) Pos() token.Pos  { return d.DeclPos }
func (d *TableDecl) Pos() token.Pos     { return d.DeclPos }
func (d *VarDecl) Pos() token.Pos       { return d.DeclPos }
func (d *ControlDecl) Pos() token.Pos   { return d.DeclPos }
func (d *ParserDecl) Pos() token.Pos    { return d.DeclPos }
func (d *Instantiation) Pos() token.Pos { return d.DeclPos }

// Program is a complete P4 program: an ordered list of declarations plus at
// most one package instantiation ("main").
type Program struct {
	Decls []Decl
}

// Main returns the package instantiation, or nil if absent.
func (p *Program) Main() *Instantiation {
	for _, d := range p.Decls {
		if inst, ok := d.(*Instantiation); ok {
			return inst
		}
	}
	return nil
}

// DeclByName returns the first declaration with the given name.
func (p *Program) DeclByName(name string) Decl {
	for _, d := range p.Decls {
		if d.DeclName() == name {
			return d
		}
	}
	return nil
}

// Control returns the named control declaration, or nil.
func (p *Program) Control(name string) *ControlDecl {
	if c, ok := p.DeclByName(name).(*ControlDecl); ok {
		return c
	}
	return nil
}

// Parser returns the named parser declaration, or nil.
func (p *Program) Parser(name string) *ParserDecl {
	if d, ok := p.DeclByName(name).(*ParserDecl); ok {
		return d
	}
	return nil
}

// Controls returns all control declarations in order.
func (p *Program) Controls() []*ControlDecl {
	var out []*ControlDecl
	for _, d := range p.Decls {
		if c, ok := d.(*ControlDecl); ok {
			out = append(out, c)
		}
	}
	return out
}

// LocalByName returns the control-local declaration with the given name.
func (c *ControlDecl) LocalByName(name string) Decl {
	for _, d := range c.Locals {
		if d.DeclName() == name {
			return d
		}
	}
	return nil
}

// Actions returns the control's action declarations in order.
func (c *ControlDecl) Actions() []*ActionDecl {
	var out []*ActionDecl
	for _, d := range c.Locals {
		if a, ok := d.(*ActionDecl); ok {
			out = append(out, a)
		}
	}
	return out
}

// Tables returns the control's table declarations in order.
func (c *ControlDecl) Tables() []*TableDecl {
	var out []*TableDecl
	for _, d := range c.Locals {
		if t, ok := d.(*TableDecl); ok {
			out = append(out, t)
		}
	}
	return out
}

// StateByName returns the named parser state, or nil.
func (d *ParserDecl) StateByName(name string) *ParserState {
	for i := range d.States {
		if d.States[i].Name == name {
			return &d.States[i]
		}
	}
	return nil
}
