package ast_test

import (
	"testing"

	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
)

// TestCloneIndependence: mutating a clone must never leak into the
// original — the invariant the whole pass/snapshot architecture rests on.
func TestCloneIndependence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		orig := generator.Generate(generator.DefaultConfig(seed))
		before := printer.Print(orig)
		clone := ast.CloneProgram(orig)

		// Scorch the clone: rename every identifier, flip every literal,
		// drop every statement.
		for _, d := range clone.Decls {
			c, ok := d.(*ast.ControlDecl)
			if !ok {
				continue
			}
			ast.RewriteControl(c, func(s ast.Stmt) []ast.Stmt {
				return nil
			}, func(e ast.Expr) ast.Expr {
				switch e := e.(type) {
				case *ast.Ident:
					e.Name = "clobbered"
				case *ast.IntLit:
					e.Val = ^e.Val
				}
				return e
			})
			c.Locals = nil
			c.Params = nil
		}
		if after := printer.Print(orig); after != before {
			t.Fatalf("seed %d: clone mutation leaked into the original", seed)
		}
	}
}

func TestMaskWidth(t *testing.T) {
	cases := []struct {
		v    uint64
		w    int
		want uint64
	}{
		{0xFFFF, 8, 0xFF},
		{0xFFFF, 16, 0xFFFF},
		{0xFFFF, 64, 0xFFFF},
		{0xFFFF, 0, 0xFFFF}, // width 0 = identity
		{1, 1, 1},
		{2, 1, 0},
	}
	for _, tc := range cases {
		if got := ast.MaskWidth(tc.v, tc.w); got != tc.want {
			t.Errorf("MaskWidth(%#x, %d) = %#x, want %#x", tc.v, tc.w, got, tc.want)
		}
	}
}

func TestLValueHelpers(t *testing.T) {
	lv := &ast.SliceExpr{
		X:  ast.Member(ast.Member(ast.N("hdr"), "h1"), "f1"),
		Hi: 7, Lo: 1,
	}
	if !ast.IsLValue(lv) {
		t.Error("slice of member chain must be an lvalue")
	}
	if root := ast.RootIdent(lv); root == nil || root.Name != "hdr" {
		t.Errorf("RootIdent = %v, want hdr", root)
	}
	call := ast.Call(ast.N("f"), ast.N("x"))
	if ast.IsLValue(call) {
		t.Error("calls are not lvalues")
	}
	if ast.RootIdent(call) != nil {
		t.Error("RootIdent of a call must be nil")
	}
}

func TestBitWidth(t *testing.T) {
	h := &ast.HeaderType{Name: "H", Fields: []ast.Field{
		{Name: "a", Type: &ast.BitType{Width: 8}},
		{Name: "b", Type: &ast.BitType{Width: 16}},
	}}
	s := &ast.StructType{Name: "S", Fields: []ast.Field{
		{Name: "h", Type: h},
		{Name: "x", Type: &ast.BitType{Width: 9}},
	}}
	if got := ast.BitWidth(h); got != 24 {
		t.Errorf("header width = %d, want 24", got)
	}
	if got := ast.BitWidth(s); got != 33 {
		t.Errorf("struct width = %d, want 33", got)
	}
	if got := ast.BitWidth(&ast.BoolType{}); got != 1 {
		t.Errorf("bool width = %d, want 1", got)
	}
}

func TestDirectionSemantics(t *testing.T) {
	cases := []struct {
		d            ast.Direction
		reads, write bool
	}{
		{ast.DirNone, true, false},
		{ast.DirIn, true, false},
		{ast.DirOut, false, true},
		{ast.DirInOut, true, true},
	}
	for _, tc := range cases {
		if tc.d.Reads() != tc.reads || tc.d.Writes() != tc.write {
			t.Errorf("%v: Reads=%v Writes=%v, want %v %v",
				tc.d, tc.d.Reads(), tc.d.Writes(), tc.reads, tc.write)
		}
	}
}

func TestProgramAccessors(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(5))
	if prog.Main() == nil {
		t.Fatal("generated program has no main")
	}
	if prog.Control("ingress") == nil || prog.Parser("p") == nil {
		t.Fatal("block accessors failed")
	}
	if prog.DeclByName("nonexistent") != nil {
		t.Fatal("DeclByName invented a declaration")
	}
	ctrl := prog.Control("ingress")
	for _, tbl := range ctrl.Tables() {
		if ctrl.LocalByName(tbl.Name) != tbl {
			t.Errorf("LocalByName(%s) mismatch", tbl.Name)
		}
	}
}
