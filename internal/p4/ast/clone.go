package ast

import "fmt"

// CloneProgram deep-copies a program. Compiler passes always transform a
// clone so earlier snapshots stay intact for translation validation.
func CloneProgram(p *Program) *Program {
	out := &Program{Decls: make([]Decl, len(p.Decls))}
	for i, d := range p.Decls {
		out.Decls[i] = CloneDecl(d)
	}
	return out
}

// CloneDecl deep-copies a declaration.
func CloneDecl(d Decl) Decl {
	switch d := d.(type) {
	case nil:
		return nil
	case *HeaderDecl:
		return &HeaderDecl{DeclPos: d.DeclPos, Name: d.Name, Fields: cloneFields(d.Fields)}
	case *StructDecl:
		return &StructDecl{DeclPos: d.DeclPos, Name: d.Name, Fields: cloneFields(d.Fields)}
	case *TypedefDecl:
		return &TypedefDecl{DeclPos: d.DeclPos, Name: d.Name, Type: CloneType(d.Type)}
	case *ConstDecl:
		return &ConstDecl{DeclPos: d.DeclPos, Name: d.Name, Type: CloneType(d.Type), Value: CloneExpr(d.Value)}
	case *ActionDecl:
		return &ActionDecl{DeclPos: d.DeclPos, Name: d.Name, Params: cloneParams(d.Params), Body: CloneBlock(d.Body)}
	case *FunctionDecl:
		return &FunctionDecl{DeclPos: d.DeclPos, Name: d.Name, Return: CloneType(d.Return),
			Params: cloneParams(d.Params), Body: CloneBlock(d.Body)}
	case *TableDecl:
		t := &TableDecl{DeclPos: d.DeclPos, Name: d.Name}
		for _, k := range d.Keys {
			t.Keys = append(t.Keys, TableKey{Expr: CloneExpr(k.Expr), Match: k.Match})
		}
		for _, a := range d.Actions {
			t.Actions = append(t.Actions, cloneActionRef(a))
		}
		if d.Default != nil {
			ref := cloneActionRef(*d.Default)
			t.Default = &ref
		}
		return t
	case *VarDecl:
		return &VarDecl{DeclPos: d.DeclPos, Name: d.Name, Type: CloneType(d.Type), Init: CloneExpr(d.Init)}
	case *ControlDecl:
		c := &ControlDecl{DeclPos: d.DeclPos, Name: d.Name, Params: cloneParams(d.Params), Apply: CloneBlock(d.Apply)}
		for _, l := range d.Locals {
			c.Locals = append(c.Locals, CloneDecl(l))
		}
		return c
	case *ParserDecl:
		pd := &ParserDecl{DeclPos: d.DeclPos, Name: d.Name, Params: cloneParams(d.Params)}
		for _, s := range d.States {
			ns := ParserState{DeclPos: s.DeclPos, Name: s.Name, Trans: cloneTransition(s.Trans)}
			for _, st := range s.Stmts {
				ns.Stmts = append(ns.Stmts, CloneStmt(st))
			}
			pd.States = append(pd.States, ns)
		}
		return pd
	case *Instantiation:
		args := make([]string, len(d.Args))
		copy(args, d.Args)
		return &Instantiation{DeclPos: d.DeclPos, Package: d.Package, Args: args, Name: d.Name}
	default:
		panic(fmt.Sprintf("ast.CloneDecl: unknown declaration %T", d))
	}
}

func cloneActionRef(a ActionRef) ActionRef {
	out := ActionRef{Name: a.Name}
	for _, arg := range a.Args {
		out.Args = append(out.Args, CloneExpr(arg))
	}
	return out
}

func cloneParams(ps []Param) []Param {
	out := make([]Param, len(ps))
	for i, p := range ps {
		out[i] = Param{Dir: p.Dir, Name: p.Name, Type: CloneType(p.Type)}
	}
	return out
}

func cloneTransition(t Transition) Transition {
	switch t := t.(type) {
	case nil:
		return nil
	case *TransDirect:
		return &TransDirect{Next: t.Next}
	case *TransSelect:
		ns := &TransSelect{Expr: CloneExpr(t.Expr)}
		for _, c := range t.Cases {
			nc := SelectCase{Next: c.Next}
			if c.Value != nil {
				nc.Value = &IntLit{LitPos: c.Value.LitPos, Width: c.Value.Width, Val: c.Value.Val}
			}
			ns.Cases = append(ns.Cases, nc)
		}
		return ns
	default:
		panic(fmt.Sprintf("ast.cloneTransition: unknown transition %T", t))
	}
}

// CloneBlock deep-copies a block statement (nil-safe).
func CloneBlock(b *BlockStmt) *BlockStmt {
	if b == nil {
		return nil
	}
	out := &BlockStmt{LBrace: b.LBrace, Stmts: make([]Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		out.Stmts[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt deep-copies a statement (nil-safe).
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *AssignStmt:
		return &AssignStmt{LHS: CloneExpr(s.LHS), RHS: CloneExpr(s.RHS)}
	case *VarDeclStmt:
		return &VarDeclStmt{DeclPos: s.DeclPos, Name: s.Name, Type: CloneType(s.Type), Init: CloneExpr(s.Init)}
	case *ConstDeclStmt:
		return &ConstDeclStmt{DeclPos: s.DeclPos, Name: s.Name, Type: CloneType(s.Type), Value: CloneExpr(s.Value)}
	case *IfStmt:
		return &IfStmt{IfPos: s.IfPos, Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then), Else: CloneStmt(s.Else)}
	case *BlockStmt:
		return CloneBlock(s)
	case *CallStmt:
		return &CallStmt{Call: CloneExpr(s.Call).(*CallExpr)}
	case *ReturnStmt:
		return &ReturnStmt{RetPos: s.RetPos, Value: CloneExpr(s.Value)}
	case *ExitStmt:
		return &ExitStmt{ExitPos: s.ExitPos}
	case *EmptyStmt:
		return &EmptyStmt{SemiPos: s.SemiPos}
	case *SwitchStmt:
		sw := &SwitchStmt{SwitchPos: s.SwitchPos, Tag: CloneExpr(s.Tag)}
		for _, c := range s.Cases {
			nc := SwitchCase{Body: CloneBlock(c.Body)}
			for _, l := range c.Labels {
				nc.Labels = append(nc.Labels, CloneExpr(l))
			}
			sw.Cases = append(sw.Cases, nc)
		}
		return sw
	default:
		panic(fmt.Sprintf("ast.CloneStmt: unknown statement %T", s))
	}
}

// CloneExpr deep-copies an expression (nil-safe).
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Ident:
		return &Ident{NamePos: e.NamePos, Name: e.Name}
	case *IntLit:
		return &IntLit{LitPos: e.LitPos, Width: e.Width, Val: e.Val}
	case *BoolLit:
		return &BoolLit{LitPos: e.LitPos, Val: e.Val}
	case *UnaryExpr:
		return &UnaryExpr{OpPos: e.OpPos, Op: e.Op, X: CloneExpr(e.X)}
	case *BinaryExpr:
		return &BinaryExpr{OpPos: e.OpPos, Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y)}
	case *MuxExpr:
		return &MuxExpr{QPos: e.QPos, Cond: CloneExpr(e.Cond), Then: CloneExpr(e.Then), Else: CloneExpr(e.Else)}
	case *CastExpr:
		return &CastExpr{CastPos: e.CastPos, To: CloneType(e.To), X: CloneExpr(e.X)}
	case *MemberExpr:
		return &MemberExpr{X: CloneExpr(e.X), Member: e.Member}
	case *SliceExpr:
		return &SliceExpr{X: CloneExpr(e.X), Hi: e.Hi, Lo: e.Lo}
	case *CallExpr:
		c := &CallExpr{Func: CloneExpr(e.Func)}
		for _, a := range e.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	default:
		panic(fmt.Sprintf("ast.CloneExpr: unknown expression %T", e))
	}
}
