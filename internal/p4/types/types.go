// Package types implements name resolution and type checking for the P4₁₆
// subset — McKeeman levels 4 (type correct) and 5 (statically conforming)
// from Table 1 of the paper.
//
// The checker enforces the rules the paper's generator must uphold ("if
// P4C's parser and type checker correctly rejected a generated program, we
// consider this to be a bug in our random program generator", §4.2):
// direction rules (only writable lvalues may bind to out/inout parameters),
// bit-width limits, slice bounds, table/action arity, and unsized-literal
// coercion. It also mutates unsized integer literals in place, giving them
// the width demanded by context, so downstream interpreters always see
// sized values.
package types

import (
	"fmt"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/token"
)

// MaxWidth is the maximum supported bit<N> width (documented limitation;
// the paper's programs use widths up to 48).
const MaxWidth = 64

// Error is a type-checking error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: type error: %s", e.Pos, e.Msg)
	}
	return "type error: " + e.Msg
}

// entity is a named binding in scope.
type entity struct {
	typ      ast.Type
	writable bool // false for `in` params and constants
	kind     entityKind
	action   *ast.ActionDecl
	function *ast.FunctionDecl
	table    *ast.TableDecl
}

type entityKind int

const (
	kindVar entityKind = iota
	kindConst
	kindAction
	kindFunction
	kindTable
)

// scope is a lexical scope chain.
type scope struct {
	parent *scope
	names  map[string]*entity
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: map[string]*entity{}}
}

func (s *scope) lookup(name string) *entity {
	for sc := s; sc != nil; sc = sc.parent {
		if e, ok := sc.names[name]; ok {
			return e
		}
	}
	return nil
}

func (s *scope) declare(name string, e *entity) error {
	if _, ok := s.names[name]; ok {
		return fmt.Errorf("duplicate declaration of %q", name)
	}
	s.names[name] = e
	return nil
}

// Checker holds the state of one type-checking run.
type Checker struct {
	prog     *ast.Program
	typeDecl map[string]ast.Type
	errs     []*Error
}

// Check resolves named types and type-checks the program, mutating unsized
// literals to their contextual widths. It returns the first group of
// errors found (all errors discovered before bailout).
func Check(prog *ast.Program) error {
	c := &Checker{prog: prog, typeDecl: map[string]ast.Type{}}
	c.collectTypes()
	c.resolveDeclTypes()
	c.checkDecls()
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

func (c *Checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// collectTypes registers declared header/struct/typedef names.
func (c *Checker) collectTypes() {
	for _, d := range c.prog.Decls {
		switch d := d.(type) {
		case *ast.HeaderDecl:
			c.typeDecl[d.Name] = &ast.HeaderType{Name: d.Name, Fields: d.Fields}
		case *ast.StructDecl:
			c.typeDecl[d.Name] = &ast.StructType{Name: d.Name, Fields: d.Fields}
		case *ast.TypedefDecl:
			c.typeDecl[d.Name] = d.Type
		}
	}
}

// resolve rewrites NamedType references to their declared types, following
// typedef chains. Returns the input on failure (an error is recorded).
func (c *Checker) resolve(t ast.Type, pos token.Pos) ast.Type {
	seen := 0
	for {
		nt, ok := t.(*ast.NamedType)
		if !ok {
			return c.resolveInner(t, pos)
		}
		decl, ok := c.typeDecl[nt.Name]
		if !ok {
			c.errorf(pos, "undefined type %q", nt.Name)
			return t
		}
		t = decl
		seen++
		if seen > 32 {
			c.errorf(pos, "typedef cycle through %q", nt.Name)
			return t
		}
	}
}

// resolveInner resolves field types of headers and structs in place.
func (c *Checker) resolveInner(t ast.Type, pos token.Pos) ast.Type {
	switch t := t.(type) {
	case *ast.BitType:
		if t.Width <= 0 || t.Width > MaxWidth {
			c.errorf(pos, "bit width %d out of range [1,%d]", t.Width, MaxWidth)
		}
	case *ast.HeaderType:
		for i := range t.Fields {
			ft := c.resolve(t.Fields[i].Type, pos)
			if _, ok := ft.(*ast.BitType); !ok {
				c.errorf(pos, "header %s field %s must have bit<N> type, got %s",
					t.Name, t.Fields[i].Name, ft)
			}
			t.Fields[i].Type = ft
		}
	case *ast.StructType:
		for i := range t.Fields {
			ft := c.resolve(t.Fields[i].Type, pos)
			switch ft.(type) {
			case *ast.VoidType, *ast.PacketType:
				c.errorf(pos, "struct %s field %s has invalid type %s", t.Name, t.Fields[i].Name, ft)
			}
			t.Fields[i].Type = ft
		}
	}
	return t
}

// resolveDeclTypes resolves all type references reachable from
// declarations: fields, params, returns, variables.
func (c *Checker) resolveDeclTypes() {
	for _, d := range c.prog.Decls {
		switch d := d.(type) {
		case *ast.HeaderDecl:
			c.resolveInner(&ast.HeaderType{Name: d.Name, Fields: d.Fields}, d.DeclPos)
		case *ast.StructDecl:
			c.resolveInner(&ast.StructType{Name: d.Name, Fields: d.Fields}, d.DeclPos)
		case *ast.TypedefDecl:
			d.Type = c.resolve(d.Type, d.DeclPos)
		case *ast.ConstDecl:
			d.Type = c.resolve(d.Type, d.DeclPos)
		case *ast.ControlDecl:
			c.resolveParams(d.Params, d.DeclPos)
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					c.resolveParams(l.Params, l.DeclPos)
				case *ast.FunctionDecl:
					l.Return = c.resolve(l.Return, l.DeclPos)
					c.resolveParams(l.Params, l.DeclPos)
				case *ast.VarDecl:
					l.Type = c.resolve(l.Type, l.DeclPos)
				case *ast.ConstDecl:
					l.Type = c.resolve(l.Type, l.DeclPos)
				}
			}
		case *ast.ParserDecl:
			c.resolveParams(d.Params, d.DeclPos)
		case *ast.FunctionDecl:
			d.Return = c.resolve(d.Return, d.DeclPos)
			c.resolveParams(d.Params, d.DeclPos)
		case *ast.ActionDecl:
			c.resolveParams(d.Params, d.DeclPos)
		}
	}
}

func (c *Checker) resolveParams(ps []ast.Param, pos token.Pos) {
	for i := range ps {
		ps[i].Type = c.resolve(ps[i].Type, pos)
	}
}

func (c *Checker) checkDecls() {
	top := newScope(nil)
	// Builtin NoAction.
	_ = top.declare("NoAction", &entity{kind: kindAction,
		action: &ast.ActionDecl{Name: "NoAction", Body: &ast.BlockStmt{}}})
	for _, d := range c.prog.Decls {
		switch d := d.(type) {
		case *ast.ConstDecl:
			c.checkExprExpect(top, d.Value, d.Type)
			_ = top.declare(d.Name, &entity{typ: d.Type, kind: kindConst})
		case *ast.ActionDecl:
			c.checkCallable(top, d.Params, d.Body, nil, d.DeclPos, "action "+d.Name)
			if err := top.declare(d.Name, &entity{kind: kindAction, action: d}); err != nil {
				c.errorf(d.DeclPos, "%v", err)
			}
		case *ast.FunctionDecl:
			c.checkCallable(top, d.Params, d.Body, d.Return, d.DeclPos, "function "+d.Name)
			if err := top.declare(d.Name, &entity{kind: kindFunction, function: d}); err != nil {
				c.errorf(d.DeclPos, "%v", err)
			}
		case *ast.ControlDecl:
			c.checkControl(top, d)
		case *ast.ParserDecl:
			c.checkParser(top, d)
		case *ast.Instantiation:
			c.checkInstantiation(d)
		}
	}
}

func (c *Checker) checkInstantiation(d *ast.Instantiation) {
	for _, a := range d.Args {
		decl := c.prog.DeclByName(a)
		if decl == nil {
			c.errorf(d.DeclPos, "instantiation argument %q does not name a declaration", a)
			continue
		}
		switch decl.(type) {
		case *ast.ControlDecl, *ast.ParserDecl:
		default:
			c.errorf(d.DeclPos, "instantiation argument %q must be a parser or control", a)
		}
	}
}

func (c *Checker) declareParams(sc *scope, ps []ast.Param, pos token.Pos) {
	for _, p := range ps {
		writable := p.Dir == ast.DirOut || p.Dir == ast.DirInOut || p.Dir == ast.DirNone
		if err := sc.declare(p.Name, &entity{typ: p.Type, writable: writable, kind: kindVar}); err != nil {
			c.errorf(pos, "%v", err)
		}
	}
}

func (c *Checker) checkControl(top *scope, d *ast.ControlDecl) {
	sc := newScope(top)
	c.declareParams(sc, d.Params, d.DeclPos)
	for _, l := range d.Locals {
		switch l := l.(type) {
		case *ast.VarDecl:
			if l.Init != nil {
				c.checkExprExpect(sc, l.Init, l.Type)
			}
			if err := sc.declare(l.Name, &entity{typ: l.Type, writable: true, kind: kindVar}); err != nil {
				c.errorf(l.DeclPos, "%v", err)
			}
		case *ast.ConstDecl:
			c.checkExprExpect(sc, l.Value, l.Type)
			if err := sc.declare(l.Name, &entity{typ: l.Type, kind: kindConst}); err != nil {
				c.errorf(l.DeclPos, "%v", err)
			}
		case *ast.ActionDecl:
			c.checkCallable(sc, l.Params, l.Body, nil, l.DeclPos, "action "+l.Name)
			if err := sc.declare(l.Name, &entity{kind: kindAction, action: l}); err != nil {
				c.errorf(l.DeclPos, "%v", err)
			}
		case *ast.FunctionDecl:
			c.checkCallable(sc, l.Params, l.Body, l.Return, l.DeclPos, "function "+l.Name)
			if err := sc.declare(l.Name, &entity{kind: kindFunction, function: l}); err != nil {
				c.errorf(l.DeclPos, "%v", err)
			}
		case *ast.TableDecl:
			c.checkTable(sc, l)
			if err := sc.declare(l.Name, &entity{kind: kindTable, table: l}); err != nil {
				c.errorf(l.DeclPos, "%v", err)
			}
		default:
			c.errorf(l.Pos(), "declaration %T not allowed in control", l)
		}
	}
	c.checkBlock(sc, d.Apply, &bodyCtx{inControlApply: true})
}

func (c *Checker) checkTable(sc *scope, t *ast.TableDecl) {
	for i := range t.Keys {
		kt := c.checkExpr(sc, t.Keys[i].Expr, nil)
		if _, ok := kt.(*ast.BitType); !ok {
			if _, ok := kt.(*ast.BoolType); !ok {
				c.errorf(t.DeclPos, "table %s key %d must have bit or bool type, got %s", t.Name, i, kt)
			}
		}
	}
	names := map[string]bool{}
	for _, a := range t.Actions {
		names[a.Name] = true
		ent := sc.lookup(a.Name)
		if ent == nil || ent.kind != kindAction {
			c.errorf(t.DeclPos, "table %s references unknown action %q", t.Name, a.Name)
		}
	}
	if t.Default != nil {
		if !names[t.Default.Name] && t.Default.Name != "NoAction" {
			c.errorf(t.DeclPos, "table %s default_action %q is not in the actions list", t.Name, t.Default.Name)
		}
		ent := sc.lookup(t.Default.Name)
		if ent != nil && ent.kind == kindAction && ent.action != nil {
			// Default-action args bind the directionless (control-plane)
			// parameters.
			var cp []ast.Param
			for _, p := range ent.action.Params {
				if p.Dir == ast.DirNone {
					cp = append(cp, p)
				}
			}
			if len(t.Default.Args) != len(cp) {
				c.errorf(t.DeclPos, "table %s default_action %s expects %d control-plane args, got %d",
					t.Name, t.Default.Name, len(cp), len(t.Default.Args))
			} else {
				for i, a := range t.Default.Args {
					c.checkExprExpect(sc, a, cp[i].Type)
				}
			}
			// Directioned action params cannot be bound by default_action
			// in this subset.
			for _, p := range ent.action.Params {
				if p.Dir != ast.DirNone {
					c.errorf(t.DeclPos, "table %s: action %s with directioned parameters cannot be a table action",
						t.Name, t.Default.Name)
					break
				}
			}
		}
	}
	// Actions referenced from a table must not have directioned params
	// (those are only for direct invocation).
	for _, a := range t.Actions {
		ent := sc.lookup(a.Name)
		if ent == nil || ent.action == nil {
			continue
		}
		for _, p := range ent.action.Params {
			if p.Dir != ast.DirNone {
				c.errorf(t.DeclPos, "table %s: action %s has directioned parameter %s and cannot be a table action",
					t.Name, a.Name, p.Name)
				break
			}
		}
	}
}

func (c *Checker) checkParser(top *scope, d *ast.ParserDecl) {
	sc := newScope(top)
	c.declareParams(sc, d.Params, d.DeclPos)
	states := map[string]bool{"accept": true, "reject": true}
	for i := range d.States {
		if states[d.States[i].Name] {
			c.errorf(d.States[i].DeclPos, "duplicate parser state %q", d.States[i].Name)
		}
		states[d.States[i].Name] = true
	}
	if d.StateByName("start") == nil {
		c.errorf(d.DeclPos, "parser %s has no start state", d.Name)
	}
	for i := range d.States {
		st := &d.States[i]
		ssc := newScope(sc)
		ctx := &bodyCtx{inParser: true}
		for _, s := range st.Stmts {
			c.checkStmt(ssc, s, ctx)
		}
		switch tr := st.Trans.(type) {
		case *ast.TransDirect:
			if !states[tr.Next] {
				c.errorf(st.DeclPos, "state %s transitions to unknown state %q", st.Name, tr.Next)
			}
		case *ast.TransSelect:
			et := c.checkExpr(ssc, tr.Expr, nil)
			bt, ok := et.(*ast.BitType)
			if !ok {
				c.errorf(st.DeclPos, "select expression must have bit type, got %s", et)
				break
			}
			for j := range tr.Cases {
				if tr.Cases[j].Value != nil {
					if tr.Cases[j].Value.Width == 0 {
						tr.Cases[j].Value.Width = bt.Width
						tr.Cases[j].Value.Val = ast.MaskWidth(tr.Cases[j].Value.Val, bt.Width)
					} else if tr.Cases[j].Value.Width != bt.Width {
						c.errorf(st.DeclPos, "select case width %d does not match key width %d",
							tr.Cases[j].Value.Width, bt.Width)
					}
				}
				if !states[tr.Cases[j].Next] {
					c.errorf(st.DeclPos, "state %s selects unknown state %q", st.Name, tr.Cases[j].Next)
				}
			}
		case nil:
			c.errorf(st.DeclPos, "state %s has no transition", st.Name)
		}
	}
}

// bodyCtx tracks the statement context for context-sensitive rules.
type bodyCtx struct {
	returnType     ast.Type // nil outside functions; VoidType in actions
	inAction       bool
	inControlApply bool
	inParser       bool
}

func (c *Checker) checkCallable(outer *scope, params []ast.Param, body *ast.BlockStmt,
	ret ast.Type, pos token.Pos, what string) {
	sc := newScope(outer)
	c.declareParams(sc, params, pos)
	ctx := &bodyCtx{returnType: ret, inAction: ret == nil}
	c.checkBlock(sc, body, ctx)
}
