package types

import (
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/token"
)

func (c *Checker) checkBlock(outer *scope, b *ast.BlockStmt, ctx *bodyCtx) {
	if b == nil {
		return
	}
	sc := newScope(outer)
	for _, s := range b.Stmts {
		c.checkStmt(sc, s, ctx)
	}
}

func (c *Checker) checkStmt(sc *scope, s ast.Stmt, ctx *bodyCtx) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		lt := c.checkLValue(sc, s.LHS)
		c.checkExprExpect(sc, s.RHS, lt)
	case *ast.VarDeclStmt:
		s.Type = c.resolve(s.Type, s.DeclPos)
		if s.Init != nil {
			c.checkExprExpect(sc, s.Init, s.Type)
		}
		if err := sc.declare(s.Name, &entity{typ: s.Type, writable: true, kind: kindVar}); err != nil {
			c.errorf(s.DeclPos, "%v", err)
		}
	case *ast.ConstDeclStmt:
		s.Type = c.resolve(s.Type, s.DeclPos)
		c.checkExprExpect(sc, s.Value, s.Type)
		if err := sc.declare(s.Name, &entity{typ: s.Type, kind: kindConst}); err != nil {
			c.errorf(s.DeclPos, "%v", err)
		}
	case *ast.IfStmt:
		c.checkExprExpect(sc, s.Cond, &ast.BoolType{})
		c.checkBlock(sc, s.Then, ctx)
		if s.Else != nil {
			c.checkStmt(newScope(sc), s.Else, ctx)
		}
	case *ast.BlockStmt:
		c.checkBlock(sc, s, ctx)
	case *ast.CallStmt:
		if c.checkPacketMethod(sc, s.Call, ctx) {
			return
		}
		c.checkCall(sc, s.Call, true)
	case *ast.ReturnStmt:
		switch {
		case ctx.inAction:
			if s.Value != nil {
				c.errorf(s.RetPos, "action return must not carry a value")
			}
		case ctx.returnType != nil:
			if _, void := ctx.returnType.(*ast.VoidType); void {
				if s.Value != nil {
					c.errorf(s.RetPos, "void function returns a value")
				}
			} else if s.Value == nil {
				c.errorf(s.RetPos, "function must return a %s value", ctx.returnType)
			} else {
				c.checkExprExpect(sc, s.Value, ctx.returnType)
			}
		case ctx.inControlApply:
			if s.Value != nil {
				c.errorf(s.RetPos, "control apply return must not carry a value")
			}
		case ctx.inParser:
			c.errorf(s.RetPos, "return is not allowed in parser states")
		}
	case *ast.ExitStmt:
		if ctx.inParser {
			c.errorf(s.ExitPos, "exit is not allowed in parser states")
		}
	case *ast.EmptyStmt:
	case *ast.SwitchStmt:
		tt := c.checkExpr(sc, s.Tag, nil)
		bt, isBit := tt.(*ast.BitType)
		if !isBit {
			c.errorf(s.SwitchPos, "switch tag must have bit type, got %s", tt)
		}
		seenDefault := false
		for i := range s.Cases {
			if s.Cases[i].Labels == nil {
				if seenDefault {
					c.errorf(s.SwitchPos, "duplicate default case in switch")
				}
				seenDefault = true
			}
			for _, l := range s.Cases[i].Labels {
				if isBit {
					c.checkExprExpect(sc, l, bt)
				} else {
					c.checkExpr(sc, l, nil)
				}
				if !isConstExpr(l) {
					c.errorf(l.Pos(), "switch case label must be a compile-time constant")
				}
			}
			c.checkBlock(sc, s.Cases[i].Body, ctx)
		}
	default:
		c.errorf(s.Pos(), "unsupported statement %T", s)
	}
}

func isConstExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit, *ast.BoolLit:
		return true
	case *ast.UnaryExpr:
		return isConstExpr(e.X)
	case *ast.BinaryExpr:
		return isConstExpr(e.X) && isConstExpr(e.Y)
	case *ast.CastExpr:
		return isConstExpr(e.X)
	}
	return false
}

// checkLValue type-checks an assignment target and enforces writability.
func (c *Checker) checkLValue(sc *scope, e ast.Expr) ast.Type {
	if !ast.IsLValue(e) {
		c.errorf(e.Pos(), "expression is not assignable")
		return c.checkExpr(sc, e, nil)
	}
	root := ast.RootIdent(e)
	if root != nil {
		if ent := sc.lookup(root.Name); ent != nil && !ent.writable {
			c.errorf(e.Pos(), "cannot assign to read-only %q", root.Name)
		}
	}
	return c.checkExpr(sc, e, nil)
}

// checkExprExpect checks e against an expected type, coercing unsized
// literals to the expected width.
func (c *Checker) checkExprExpect(sc *scope, e ast.Expr, want ast.Type) ast.Type {
	got := c.checkExpr(sc, e, want)
	if want == nil || got == nil {
		return got
	}
	if u, ok := got.(*ast.UnsizedType); ok {
		if bt, ok := want.(*ast.BitType); ok {
			sizeLiteral(e, bt.Width)
			_ = u
			return want
		}
		c.errorf(e.Pos(), "integer literal used where %s is required", want)
		return want
	}
	if !got.Equal(want) {
		c.errorf(e.Pos(), "type mismatch: have %s, want %s", got, want)
	}
	return got
}

// sizeLiteral assigns a contextual width to every unsized literal in a
// constant expression tree.
func sizeLiteral(e ast.Expr, width int) {
	switch e := e.(type) {
	case *ast.IntLit:
		if e.Width == 0 {
			e.Width = width
			e.Val = ast.MaskWidth(e.Val, width)
		}
	case *ast.UnaryExpr:
		sizeLiteral(e.X, width)
	case *ast.BinaryExpr:
		if e.Op == ast.OpShl || e.Op == ast.OpShr {
			sizeLiteral(e.X, width)
			return
		}
		if !e.Op.IsComparison() && !e.Op.IsLogical() && e.Op != ast.OpConcat {
			sizeLiteral(e.X, width)
			sizeLiteral(e.Y, width)
		}
	case *ast.MuxExpr:
		sizeLiteral(e.Then, width)
		sizeLiteral(e.Else, width)
	}
}

// checkExpr infers the type of e. want is a hint for unsized-literal
// contexts and may be nil. Returns *ast.UnsizedType for unresolved literals.
func (c *Checker) checkExpr(sc *scope, e ast.Expr, want ast.Type) ast.Type {
	switch e := e.(type) {
	case *ast.Ident:
		ent := sc.lookup(e.Name)
		if ent == nil {
			c.errorf(e.NamePos, "undefined name %q", e.Name)
			return &ast.BitType{Width: 8}
		}
		if ent.kind == kindAction || ent.kind == kindFunction || ent.kind == kindTable {
			c.errorf(e.NamePos, "%q is not a value", e.Name)
			return &ast.BitType{Width: 8}
		}
		return ent.typ
	case *ast.IntLit:
		if e.Width == 0 {
			if bt, ok := want.(*ast.BitType); ok {
				e.Width = bt.Width
				e.Val = ast.MaskWidth(e.Val, bt.Width)
				return bt
			}
			return &ast.UnsizedType{Val: e.Val}
		}
		if e.Width > MaxWidth {
			c.errorf(e.LitPos, "literal width %d exceeds %d", e.Width, MaxWidth)
		}
		return &ast.BitType{Width: e.Width}
	case *ast.BoolLit:
		return &ast.BoolType{}
	case *ast.UnaryExpr:
		return c.checkUnary(sc, e, want)
	case *ast.BinaryExpr:
		return c.checkBinary(sc, e, want)
	case *ast.MuxExpr:
		c.checkExprExpect(sc, e.Cond, &ast.BoolType{})
		tt := c.checkExpr(sc, e.Then, want)
		et := c.checkExpr(sc, e.Else, want)
		return c.unify(e.Then, tt, e.Else, et, e.QPos)
	case *ast.CastExpr:
		e.To = c.resolve(e.To, e.CastPos)
		xt := c.checkExpr(sc, e.X, nil)
		switch to := e.To.(type) {
		case *ast.BitType:
			switch xt.(type) {
			case *ast.BitType, *ast.BoolType, *ast.UnsizedType:
				if u, ok := xt.(*ast.UnsizedType); ok {
					sizeLiteral(e.X, to.Width)
					_ = u
				}
			default:
				c.errorf(e.CastPos, "cannot cast %s to %s", xt, to)
			}
			return to
		case *ast.BoolType:
			if bt, ok := xt.(*ast.BitType); !ok || bt.Width != 1 {
				c.errorf(e.CastPos, "only bit<1> can be cast to bool, got %s", xt)
			}
			return to
		default:
			c.errorf(e.CastPos, "unsupported cast target %s", e.To)
			return e.To
		}
	case *ast.MemberExpr:
		return c.checkMember(sc, e)
	case *ast.SliceExpr:
		xt := c.checkExpr(sc, e.X, nil)
		bt, ok := xt.(*ast.BitType)
		if !ok {
			c.errorf(e.Pos(), "slice of non-bit type %s", xt)
			return &ast.BitType{Width: 8}
		}
		if e.Lo < 0 || e.Hi < e.Lo || e.Hi >= bt.Width {
			c.errorf(e.Pos(), "slice [%d:%d] out of range for %s", e.Hi, e.Lo, bt)
			return &ast.BitType{Width: 1}
		}
		return &ast.BitType{Width: e.Hi - e.Lo + 1}
	case *ast.CallExpr:
		return c.checkCall(sc, e, false)
	default:
		c.errorf(e.Pos(), "unsupported expression %T", e)
		return &ast.BitType{Width: 8}
	}
}

func (c *Checker) unify(xe ast.Expr, xt ast.Type, ye ast.Expr, yt ast.Type, pos token.Pos) ast.Type {
	xu, xIsU := xt.(*ast.UnsizedType)
	yu, yIsU := yt.(*ast.UnsizedType)
	switch {
	case xIsU && yIsU:
		_ = xu
		return &ast.UnsizedType{Val: xu.Val}
	case xIsU:
		if bt, ok := yt.(*ast.BitType); ok {
			sizeLiteral(xe, bt.Width)
			return yt
		}
		c.errorf(pos, "integer literal combined with %s", yt)
		return yt
	case yIsU:
		if bt, ok := xt.(*ast.BitType); ok {
			sizeLiteral(ye, bt.Width)
			_ = yu
			return xt
		}
		c.errorf(pos, "integer literal combined with %s", xt)
		return xt
	default:
		if !xt.Equal(yt) {
			c.errorf(pos, "operand type mismatch: %s vs %s", xt, yt)
		}
		return xt
	}
}

func (c *Checker) checkUnary(sc *scope, e *ast.UnaryExpr, want ast.Type) ast.Type {
	xt := c.checkExpr(sc, e.X, want)
	switch e.Op {
	case ast.OpLNot:
		if _, ok := xt.(*ast.BoolType); !ok {
			c.errorf(e.OpPos, "! requires bool operand, got %s", xt)
		}
		return &ast.BoolType{}
	case ast.OpNeg, ast.OpBitNot:
		switch t := xt.(type) {
		case *ast.BitType:
			return t
		case *ast.UnsizedType:
			return t
		default:
			c.errorf(e.OpPos, "%s requires bit operand, got %s", e.Op, xt)
			return &ast.BitType{Width: 8}
		}
	}
	c.errorf(e.OpPos, "unknown unary operator")
	return xt
}

func (c *Checker) checkBinary(sc *scope, e *ast.BinaryExpr, want ast.Type) ast.Type {
	switch {
	case e.Op.IsLogical():
		c.checkExprExpect(sc, e.X, &ast.BoolType{})
		c.checkExprExpect(sc, e.Y, &ast.BoolType{})
		return &ast.BoolType{}
	case e.Op == ast.OpEq || e.Op == ast.OpNe:
		xt := c.checkExpr(sc, e.X, nil)
		yt := c.checkExpr(sc, e.Y, nil)
		c.unify(e.X, xt, e.Y, yt, e.OpPos)
		return &ast.BoolType{}
	case e.Op.IsComparison():
		xt := c.checkExpr(sc, e.X, nil)
		yt := c.checkExpr(sc, e.Y, nil)
		t := c.unify(e.X, xt, e.Y, yt, e.OpPos)
		if _, ok := t.(*ast.BoolType); ok {
			c.errorf(e.OpPos, "ordering comparison of bool values")
		}
		return &ast.BoolType{}
	case e.Op == ast.OpShl || e.Op == ast.OpShr:
		xt := c.checkExpr(sc, e.X, want)
		yt := c.checkExpr(sc, e.Y, nil)
		// The shift amount may have any bit width, or be an unsized
		// constant. Shifting a value of unknown width is the Fig. 5b
		// crash scenario: here it is a clean error.
		if u, ok := yt.(*ast.UnsizedType); ok {
			sizeLiteral(e.Y, 32)
			_ = u
		} else if _, ok := yt.(*ast.BitType); !ok {
			c.errorf(e.OpPos, "shift amount must have bit type, got %s", yt)
		}
		if u, ok := xt.(*ast.UnsizedType); ok {
			// "(1 << x) + 2" with an unsized 1: width unknown at compile
			// time (Fig. 5b). Demand a contextual width.
			if bt, ok := want.(*ast.BitType); ok {
				sizeLiteral(e.X, bt.Width)
				return bt
			}
			_ = u
			c.errorf(e.OpPos, "cannot shift an unsized integer literal of unknown width")
			return &ast.BitType{Width: 8}
		}
		return xt
	case e.Op == ast.OpConcat:
		xt := c.checkExpr(sc, e.X, nil)
		yt := c.checkExpr(sc, e.Y, nil)
		xb, xok := xt.(*ast.BitType)
		yb, yok := yt.(*ast.BitType)
		if !xok || !yok {
			c.errorf(e.OpPos, "++ requires sized bit operands, got %s and %s", xt, yt)
			return &ast.BitType{Width: 8}
		}
		if xb.Width+yb.Width > MaxWidth {
			c.errorf(e.OpPos, "concatenation width %d exceeds %d", xb.Width+yb.Width, MaxWidth)
			return &ast.BitType{Width: MaxWidth}
		}
		return &ast.BitType{Width: xb.Width + yb.Width}
	default: // arithmetic and bitwise
		xt := c.checkExpr(sc, e.X, want)
		yt := c.checkExpr(sc, e.Y, want)
		t := c.unify(e.X, xt, e.Y, yt, e.OpPos)
		if _, ok := t.(*ast.BoolType); ok {
			c.errorf(e.OpPos, "arithmetic on bool values")
			return &ast.BitType{Width: 8}
		}
		return t
	}
}

func (c *Checker) checkMember(sc *scope, e *ast.MemberExpr) ast.Type {
	xt := c.checkExpr(sc, e.X, nil)
	switch t := xt.(type) {
	case *ast.HeaderType:
		if f, ok := t.FieldByName(e.Member); ok {
			return f.Type
		}
		c.errorf(e.Pos(), "header %s has no field %q", t.Name, e.Member)
	case *ast.StructType:
		if f, ok := t.FieldByName(e.Member); ok {
			return f.Type
		}
		c.errorf(e.Pos(), "struct %s has no field %q", t.Name, e.Member)
	default:
		c.errorf(e.Pos(), "member access on non-composite type %s", xt)
	}
	return &ast.BitType{Width: 8}
}

// checkPacketMethod handles pkt.extract(hdr) and pkt.emit(hdr) call
// statements. It returns true if the call was a packet method (whether or
// not it checked cleanly).
func (c *Checker) checkPacketMethod(sc *scope, call *ast.CallExpr, ctx *bodyCtx) bool {
	m, ok := call.Func.(*ast.MemberExpr)
	if !ok {
		return false
	}
	if m.Member != "extract" && m.Member != "emit" {
		return false
	}
	recv, ok := m.X.(*ast.Ident)
	if !ok {
		return false
	}
	ent := sc.lookup(recv.Name)
	if ent == nil || ent.kind != kindVar {
		return false
	}
	if _, isPkt := ent.typ.(*ast.PacketType); !isPkt {
		return false
	}
	if len(call.Args) != 1 {
		c.errorf(call.Pos(), "%s takes exactly one header argument", m.Member)
		return true
	}
	at := c.checkExpr(sc, call.Args[0], nil)
	if _, isHdr := at.(*ast.HeaderType); !isHdr {
		c.errorf(call.Args[0].Pos(), "%s argument must be a header, got %s", m.Member, at)
	}
	switch m.Member {
	case "extract":
		if ctx == nil || !ctx.inParser {
			c.errorf(call.Pos(), "extract is only allowed in parser states")
		}
		if !ast.IsLValue(call.Args[0]) {
			c.errorf(call.Args[0].Pos(), "extract argument must be an lvalue")
		} else if root := ast.RootIdent(call.Args[0]); root != nil {
			if e := sc.lookup(root.Name); e != nil && !e.writable {
				c.errorf(call.Args[0].Pos(), "extract into read-only %q", root.Name)
			}
		}
	case "emit":
		if ctx == nil || ctx.inParser {
			c.errorf(call.Pos(), "emit is only allowed in control blocks")
		}
	}
	return true
}

// builtinMethod describes header/table methods callable in expressions.
type builtinMethod int

const (
	notBuiltin builtinMethod = iota
	methodSetValid
	methodSetInvalid
	methodIsValid
	methodApply
)

func (c *Checker) builtin(sc *scope, fn ast.Expr) (builtinMethod, ast.Type) {
	m, ok := fn.(*ast.MemberExpr)
	if !ok {
		return notBuiltin, nil
	}
	// Table apply: receiver is a table name.
	if id, ok := m.X.(*ast.Ident); ok {
		if ent := sc.lookup(id.Name); ent != nil && ent.kind == kindTable {
			if m.Member == "apply" {
				return methodApply, nil
			}
			c.errorf(m.Pos(), "table %s has no method %q", id.Name, m.Member)
			return notBuiltin, nil
		}
	}
	switch m.Member {
	case "setValid", "setInvalid", "isValid":
		rt := c.checkExpr(sc, m.X, nil)
		if _, ok := rt.(*ast.HeaderType); !ok {
			c.errorf(m.Pos(), "%s on non-header type %s", m.Member, rt)
		}
		switch m.Member {
		case "setValid":
			return methodSetValid, nil
		case "setInvalid":
			return methodSetInvalid, nil
		default:
			return methodIsValid, nil
		}
	}
	return notBuiltin, nil
}

// checkCall validates a call expression. stmtCtx is true for call
// statements (void context).
func (c *Checker) checkCall(sc *scope, e *ast.CallExpr, stmtCtx bool) ast.Type {
	// Builtin methods.
	if bm, _ := c.builtin(sc, e.Func); bm != notBuiltin {
		switch bm {
		case methodSetValid, methodSetInvalid:
			if len(e.Args) != 0 {
				c.errorf(e.Pos(), "validity methods take no arguments")
			}
			if !stmtCtx {
				c.errorf(e.Pos(), "setValid/setInvalid cannot be used as an expression")
			}
			// Receiver must be writable.
			m := e.Func.(*ast.MemberExpr)
			if root := ast.RootIdent(m.X); root != nil {
				if ent := sc.lookup(root.Name); ent != nil && !ent.writable {
					c.errorf(e.Pos(), "cannot mutate validity of read-only %q", root.Name)
				}
			}
			return &ast.VoidType{}
		case methodIsValid:
			if len(e.Args) != 0 {
				c.errorf(e.Pos(), "isValid takes no arguments")
			}
			return &ast.BoolType{}
		case methodApply:
			if len(e.Args) != 0 {
				c.errorf(e.Pos(), "apply takes no arguments")
			}
			if !stmtCtx {
				c.errorf(e.Pos(), "table apply results are not supported in expressions")
			}
			return &ast.VoidType{}
		}
	}
	id, ok := e.Func.(*ast.Ident)
	if !ok {
		c.errorf(e.Pos(), "call target is not callable")
		return &ast.VoidType{}
	}
	ent := sc.lookup(id.Name)
	if ent == nil {
		c.errorf(e.Pos(), "call to undefined %q", id.Name)
		return &ast.VoidType{}
	}
	var params []ast.Param
	var ret ast.Type = &ast.VoidType{}
	switch ent.kind {
	case kindAction:
		params = ent.action.Params
		if !stmtCtx {
			c.errorf(e.Pos(), "action %s cannot be called in an expression", id.Name)
		}
	case kindFunction:
		params = ent.function.Params
		ret = ent.function.Return
		if stmtCtx {
			// Calling a non-void function as a statement is allowed
			// (result discarded).
		} else if _, void := ret.(*ast.VoidType); void {
			c.errorf(e.Pos(), "void function %s used as a value", id.Name)
		}
	default:
		c.errorf(e.Pos(), "%q is not callable", id.Name)
		return &ast.VoidType{}
	}
	if len(e.Args) != len(params) {
		c.errorf(e.Pos(), "%s expects %d arguments, got %d", id.Name, len(params), len(e.Args))
		return ret
	}
	for i, a := range e.Args {
		p := params[i]
		c.checkExprExpect(sc, a, p.Type)
		if p.Dir.Writes() {
			if !ast.IsLValue(a) {
				c.errorf(a.Pos(), "argument %d of %s must be an lvalue (%s parameter)",
					i, id.Name, p.Dir)
				continue
			}
			if root := ast.RootIdent(a); root != nil {
				if ent := sc.lookup(root.Name); ent != nil && !ent.writable {
					c.errorf(a.Pos(), "argument %d of %s: %q is read-only but parameter is %s",
						i, id.Name, root.Name, p.Dir)
				}
			}
		}
	}
	return ret
}
