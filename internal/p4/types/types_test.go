package types_test

import (
	"strings"
	"testing"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
)

func check(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return types.Check(prog)
}

func TestTypedefResolution(t *testing.T) {
	src := `
typedef bit<8> byte_t;
typedef byte_t octet_t;
header H { octet_t a; }
struct S { H h; }
control ig(inout S s) {
    apply { s.h.a = 8w1; }
}`
	if err := check(t, src); err != nil {
		t.Fatalf("typedef chain: %v", err)
	}
}

func TestTypedefCycle(t *testing.T) {
	src := `
typedef a_t b_t;
typedef b_t a_t;
control ig(inout a_t x) {
    apply { }
}`
	if err := check(t, src); err == nil {
		t.Fatal("typedef cycle accepted")
	}
}

func TestHeaderFieldsMustBeBits(t *testing.T) {
	src := `
struct Inner { bit<8> a; }
header H { Inner i; }
control ig(inout H h) {
    apply { }
}`
	if err := check(t, src); err == nil {
		t.Fatal("header with struct field accepted")
	}
}

func TestWidthBounds(t *testing.T) {
	if err := check(t, `
control ig(inout bit<65> x) {
    apply { }
}`); err == nil {
		t.Fatal("bit<65> accepted")
	}
	if err := check(t, `
control ig(inout bit<64> x) {
    apply { x = x + 64w1; }
}`); err != nil {
		t.Fatalf("bit<64> rejected: %v", err)
	}
}

func TestConcatWidthOverflow(t *testing.T) {
	if err := check(t, `
control ig(inout bit<48> x, inout bit<32> y) {
    apply { x = (x ++ y)[47:0]; }
}`); err == nil {
		t.Fatal("80-bit concatenation accepted")
	}
}

func TestExtractOnlyInParsers(t *testing.T) {
	src := `
header H { bit<8> a; }
struct S { H h; }
control ig(packet pkt, inout S s) {
    apply { pkt.extract(s.h); }
}`
	if err := check(t, src); err == nil || !strings.Contains(err.Error(), "parser") {
		t.Fatalf("extract in control accepted (err=%v)", err)
	}
}

func TestEmitOnlyInControls(t *testing.T) {
	src := `
header H { bit<8> a; }
struct S { H h; }
parser p(packet pkt, out S s) {
    state start {
        pkt.emit(s.h);
        transition accept;
    }
}`
	if err := check(t, src); err == nil || !strings.Contains(err.Error(), "control") {
		t.Fatalf("emit in parser accepted (err=%v)", err)
	}
}

func TestTableActionDirectionRule(t *testing.T) {
	src := `
control ig(inout bit<8> x) {
    action a(inout bit<8> v) { v = v + 8w1; }
    table t {
        key = { x : exact; }
        actions = { a; NoAction; }
        default_action = NoAction();
    }
    apply { t.apply(); }
}`
	if err := check(t, src); err == nil {
		t.Fatal("table action with directioned parameter accepted")
	}
}

func TestDefaultActionArity(t *testing.T) {
	src := `
control ig(inout bit<8> x) {
    action a(bit<8> v) { x = v; }
    table t {
        key = { x : exact; }
        actions = { a; NoAction; }
        default_action = a();
    }
    apply { t.apply(); }
}`
	if err := check(t, src); err == nil {
		t.Fatal("default_action with missing control-plane arg accepted")
	}
}

func TestParserStateReferences(t *testing.T) {
	src := `
header H { bit<8> a; }
struct S { H h; }
parser p(packet pkt, out S s) {
    state start {
        pkt.extract(s.h);
        transition missing_state;
    }
}`
	if err := check(t, src); err == nil {
		t.Fatal("transition to unknown state accepted")
	}
}

func TestSelectCaseWidth(t *testing.T) {
	src := `
header H { bit<8> a; }
struct S { H h; }
parser p(packet pkt, out S s) {
    state start {
        pkt.extract(s.h);
        transition select(s.h.a) {
            16w7 : accept;
            default : accept;
        }
    }
}`
	if err := check(t, src); err == nil {
		t.Fatal("select case with mismatched width accepted")
	}
}

func TestUnsizedLiteralNeedsContext(t *testing.T) {
	// An unsized literal in a width-ambiguous shift position must be
	// rejected — the Fig. 5b program class.
	src := `
header H { bit<8> a; bit<8> c; }
struct S { H h; }
control ig(inout S s) {
    apply {
        if ((1 << s.h.c) == 16) {
            s.h.a = 8w1;
        }
    }
}`
	if err := check(t, src); err == nil {
		t.Fatal("unknown-width shift accepted (Fig. 5b)")
	}
}

func TestLiteralSizingMutatesAST(t *testing.T) {
	prog, err := parser.Parse(`
control ig(inout bit<12> x) {
    apply { x = x + 3; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	// The literal 3 must now be 12 bits wide.
	found := false
	ast.InspectStmt(prog.Controls()[0].Apply, nil, func(e ast.Expr) bool {
		if l, ok := e.(*ast.IntLit); ok && l.Val == 3 {
			found = true
			if l.Width != 12 {
				t.Errorf("literal width = %d, want 12", l.Width)
			}
		}
		return true
	})
	if !found {
		t.Fatal("literal not found")
	}
}
