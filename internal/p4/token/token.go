// Package token defines the lexical tokens of the P4₁₆ subset understood by
// this repository, along with source positions used in diagnostics.
//
// The subset follows the P4₁₆ specification (v1.2.0) closely for the
// constructs Gauntlet exercises: headers, structs, bit<N> and bool types,
// controls, parsers, tables, actions, functions with in/inout/out parameter
// directions, and the statement/expression grammar needed by the paper's
// evaluation programs (Figures 3 and 5).
package token

import "fmt"

// Kind enumerates the token kinds produced by the lexer.
type Kind int

// Token kinds. The order groups literals, identifiers, keywords, operators
// and punctuation; Kind values are internal and must not be persisted.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT  // ingress, hdr, x
	INTLIT // 42, 8w255, 0x1F, 2s3

	// Keywords.
	KwAction
	KwApply
	KwBit
	KwBool
	KwConst
	KwControl
	KwDefaultAction
	KwElse
	KwEntries
	KwExact
	KwExit
	KwFalse
	KwHeader
	KwIf
	KwIn
	KwInout
	KwKey
	KwOut
	KwPackage
	KwPacket
	KwParser
	KwReturn
	KwSelect
	KwState
	KwStruct
	KwSwitch
	KwTable
	KwTransition
	KwTrue
	KwTypedef
	KwVoid
	KwActions

	// Operators.
	Assign   // =
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	PlusSat  // |+|
	MinusSat // |-|
	Amp      // &
	Pipe     // |
	Caret    // ^
	Tilde    // ~
	Shl      // <<
	Shr      // >>
	AndAnd   // &&
	OrOr     // ||
	Bang     // !
	Eq       // ==
	NotEq    // !=
	Lt       // <
	Le       // <=
	Gt       // >
	Ge       // >=
	PlusPlus // ++ (concatenation)

	// Punctuation.
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]
	LAngleArg // < in bit<N>
	Comma     // ,
	Semicolon // ;
	Colon     // :
	Dot       // .
	Question  // ?
	At        // @
)

var kindNames = map[Kind]string{
	EOF:             "EOF",
	ILLEGAL:         "ILLEGAL",
	IDENT:           "identifier",
	INTLIT:          "integer literal",
	KwAction:        "action",
	KwApply:         "apply",
	KwBit:           "bit",
	KwBool:          "bool",
	KwConst:         "const",
	KwControl:       "control",
	KwDefaultAction: "default_action",
	KwElse:          "else",
	KwEntries:       "entries",
	KwExact:         "exact",
	KwExit:          "exit",
	KwFalse:         "false",
	KwHeader:        "header",
	KwIf:            "if",
	KwIn:            "in",
	KwInout:         "inout",
	KwKey:           "key",
	KwOut:           "out",
	KwPackage:       "package",
	KwPacket:        "packet",
	KwParser:        "parser",
	KwReturn:        "return",
	KwSelect:        "select",
	KwState:         "state",
	KwStruct:        "struct",
	KwSwitch:        "switch",
	KwTable:         "table",
	KwTransition:    "transition",
	KwTrue:          "true",
	KwTypedef:       "typedef",
	KwVoid:          "void",
	KwActions:       "actions",
	Assign:          "=",
	Plus:            "+",
	Minus:           "-",
	Star:            "*",
	Slash:           "/",
	Percent:         "%",
	PlusSat:         "|+|",
	MinusSat:        "|-|",
	Amp:             "&",
	Pipe:            "|",
	Caret:           "^",
	Tilde:           "~",
	Shl:             "<<",
	Shr:             ">>",
	AndAnd:          "&&",
	OrOr:            "||",
	Bang:            "!",
	Eq:              "==",
	NotEq:           "!=",
	Lt:              "<",
	Le:              "<=",
	Gt:              ">",
	Ge:              ">=",
	PlusPlus:        "++",
	LParen:          "(",
	RParen:          ")",
	LBrace:          "{",
	RBrace:          "}",
	LBracket:        "[",
	RBracket:        "]",
	LAngleArg:       "<",
	Comma:           ",",
	Semicolon:       ";",
	Colon:           ":",
	Dot:             ".",
	Question:        "?",
	At:              "@",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"action":         KwAction,
	"actions":        KwActions,
	"apply":          KwApply,
	"bit":            KwBit,
	"bool":           KwBool,
	"const":          KwConst,
	"control":        KwControl,
	"default_action": KwDefaultAction,
	"else":           KwElse,
	"entries":        KwEntries,
	"exact":          KwExact,
	"exit":           KwExit,
	"false":          KwFalse,
	"header":         KwHeader,
	"if":             KwIf,
	"in":             KwIn,
	"inout":          KwInout,
	"key":            KwKey,
	"out":            KwOut,
	"package":        KwPackage,
	"packet":         KwPacket,
	"parser":         KwParser,
	"return":         KwReturn,
	"select":         KwSelect,
	"state":          KwState,
	"struct":         KwStruct,
	"switch":         KwSwitch,
	"table":          KwTable,
	"transition":     KwTransition,
	"true":           KwTrue,
	"typedef":        KwTypedef,
	"void":           KwVoid,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its literal text and position.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return k >= KwAction && k <= KwActions }

// IsOperator reports whether the kind is an operator token.
func (k Kind) IsOperator() bool { return k >= Assign && k <= PlusPlus }
