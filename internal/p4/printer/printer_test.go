package printer_test

import (
	"testing"
	"testing/quick"

	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
)

// TestRoundTripGeneratedPrograms: print∘parse is the identity (modulo
// formatting, hence compared on re-printed text) for arbitrary generated
// programs — the invariant the compiler driver relies on when it re-parses
// every emitted snapshot.
func TestRoundTripGeneratedPrograms(t *testing.T) {
	f := func(seed int64) bool {
		prog := generator.Generate(generator.DefaultConfig(seed % 10000))
		t1 := printer.Print(prog)
		p2, err := parser.Parse(t1)
		if err != nil {
			t.Logf("seed %d: reparse failed: %v", seed, err)
			return false
		}
		return printer.Print(p2) == t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintDetectsChange: any AST mutation must change the
// fingerprint (the pass-skipping hash, §5.2).
func TestFingerprintDetectsChange(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(3))
	h1 := printer.Fingerprint(prog)
	clone := ast.CloneProgram(prog)
	if printer.Fingerprint(clone) != h1 {
		t.Fatal("clone fingerprint differs from original")
	}
	// Mutate one literal deep in the program.
	mutated := false
	for _, c := range clone.Controls() {
		ast.RewriteControl(c, nil, func(e ast.Expr) ast.Expr {
			if l, ok := e.(*ast.IntLit); ok && !mutated && l.Width > 0 {
				mutated = true
				return ast.Num(l.Width, l.Val+1)
			}
			return e
		})
	}
	if !mutated {
		t.Skip("no literal to mutate")
	}
	if printer.Fingerprint(clone) == h1 {
		t.Fatal("fingerprint unchanged after mutation")
	}
}

// TestPrecedenceMinimalParens: the printer emits minimal parentheses that
// still reparse to the same tree shape.
func TestPrecedenceMinimalParens(t *testing.T) {
	cases := []struct{ in, out string }{
		{"(a + b) + c", "a + b + c"},     // left-assoc flattening
		{"a + (b * c)", "a + b * c"},     // precedence needs no parens
		{"(a + b) * c", "(a + b) * c"},   // parens required
		{"a - (b - c)", "a - (b - c)"},   // right operand same level
		{"!(a && b)", "!(a && b)"},       // unary over logical
		{"~(a | b) & c", "~(a | b) & c"}, // unary over bitwise
		{"(a ? b : c) + d", "(a ? b : c) + d"} /* mux as operand */}
	for _, tc := range cases {
		e, err := parser.ParseExpr(tc.in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tc.in, err)
			continue
		}
		if got := printer.PrintExpr(e); got != tc.out {
			t.Errorf("PrintExpr(%q) = %q, want %q", tc.in, got, tc.out)
		}
	}
}
