// Package printer renders AST programs back to P4 source text. It is the
// analogue of P4C's ToP4 module (§5.2): the compiler driver prints the
// program after every pass and re-parses it, so printing must round-trip
// through the parser — a property-tested invariant of this repository.
//
// The printer also provides Fingerprint, a structural hash of the printed
// form used to skip pass outputs identical to their predecessor, exactly as
// the paper describes ("ignore any emitted intermediate program that has a
// hash identical to its predecessor").
package printer

import (
	"fmt"
	"hash/fnv"
	"strings"

	"gauntlet/internal/p4/ast"
)

// Print renders a complete program as P4 source text.
func Print(p *ast.Program) string {
	var pr pr
	for i, d := range p.Decls {
		if i > 0 {
			pr.nl()
		}
		pr.decl(d)
	}
	return pr.b.String()
}

// PrintDecl renders a single top-level declaration.
func PrintDecl(d ast.Decl) string {
	var pr pr
	pr.decl(d)
	return pr.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e ast.Expr) string {
	var pr pr
	pr.expr(e, precLowest)
	return pr.b.String()
}

// PrintStmt renders a single statement at indent level 0.
func PrintStmt(s ast.Stmt) string {
	var pr pr
	pr.stmt(s)
	return pr.b.String()
}

// Fingerprint returns a 64-bit FNV-1a hash of the printed program, used to
// detect no-op compiler passes.
func Fingerprint(p *ast.Program) uint64 {
	h := fnv.New64a()
	h.Write([]byte(Print(p)))
	return h.Sum64()
}

type pr struct {
	b      strings.Builder
	indent int
}

func (p *pr) nl() {
	p.b.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("    ")
	}
}

func (p *pr) ws(s string) { p.b.WriteString(s) }

func (p *pr) decl(d ast.Decl) {
	switch d := d.(type) {
	case *ast.HeaderDecl:
		p.ws("header " + d.Name + " {")
		p.fields(d.Fields)
		p.ws("}")
		p.nl()
	case *ast.StructDecl:
		p.ws("struct " + d.Name + " {")
		p.fields(d.Fields)
		p.ws("}")
		p.nl()
	case *ast.TypedefDecl:
		p.ws("typedef " + d.Type.String() + " " + d.Name + ";")
		p.nl()
	case *ast.ConstDecl:
		p.ws("const " + d.Type.String() + " " + d.Name + " = ")
		p.expr(d.Value, precLowest)
		p.ws(";")
		p.nl()
	case *ast.ActionDecl:
		p.ws("action " + d.Name + "(")
		p.params(d.Params)
		p.ws(") ")
		p.block(d.Body)
		p.nl()
	case *ast.FunctionDecl:
		p.ws(d.Return.String() + " " + d.Name + "(")
		p.params(d.Params)
		p.ws(") ")
		p.block(d.Body)
		p.nl()
	case *ast.TableDecl:
		p.table(d)
	case *ast.VarDecl:
		p.ws(d.Type.String() + " " + d.Name)
		if d.Init != nil {
			p.ws(" = ")
			p.expr(d.Init, precLowest)
		}
		p.ws(";")
		p.nl()
	case *ast.ControlDecl:
		p.ws("control " + d.Name + "(")
		p.params(d.Params)
		p.ws(") {")
		p.indent++
		for _, l := range d.Locals {
			p.nl()
			p.decl(l)
		}
		p.nl()
		p.ws("apply ")
		p.block(d.Apply)
		p.indent--
		p.nl()
		p.ws("}")
		p.nl()
	case *ast.ParserDecl:
		p.ws("parser " + d.Name + "(")
		p.params(d.Params)
		p.ws(") {")
		p.indent++
		for i := range d.States {
			p.nl()
			p.state(&d.States[i])
		}
		p.indent--
		p.nl()
		p.ws("}")
		p.nl()
	case *ast.Instantiation:
		p.ws(d.Package + "(" + strings.Join(d.Args, ", ") + ") " + d.Name + ";")
		p.nl()
	default:
		panic(fmt.Sprintf("printer: unknown declaration %T", d))
	}
}

func (p *pr) fields(fs []ast.Field) {
	p.indent++
	for _, f := range fs {
		p.nl()
		p.ws(f.Type.String() + " " + f.Name + ";")
	}
	p.indent--
	p.nl()
}

func (p *pr) params(ps []ast.Param) {
	for i, prm := range ps {
		if i > 0 {
			p.ws(", ")
		}
		p.ws(prm.String())
	}
}

func (p *pr) table(d *ast.TableDecl) {
	p.ws("table " + d.Name + " {")
	p.indent++
	if len(d.Keys) > 0 {
		p.nl()
		p.ws("key = {")
		p.indent++
		for _, k := range d.Keys {
			p.nl()
			p.expr(k.Expr, precLowest)
			p.ws(" : " + k.Match.String() + ";")
		}
		p.indent--
		p.nl()
		p.ws("}")
	}
	p.nl()
	p.ws("actions = {")
	p.indent++
	for _, a := range d.Actions {
		p.nl()
		p.ws(a.Name + ";")
	}
	p.indent--
	p.nl()
	p.ws("}")
	if d.Default != nil {
		p.nl()
		p.ws("default_action = " + d.Default.Name + "(")
		for i, a := range d.Default.Args {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(a, precLowest)
		}
		p.ws(");")
	}
	p.indent--
	p.nl()
	p.ws("}")
	p.nl()
}

func (p *pr) state(s *ast.ParserState) {
	p.ws("state " + s.Name + " {")
	p.indent++
	for _, st := range s.Stmts {
		p.nl()
		p.stmt(st)
	}
	if s.Trans != nil {
		p.nl()
		switch t := s.Trans.(type) {
		case *ast.TransDirect:
			p.ws("transition " + t.Next + ";")
		case *ast.TransSelect:
			p.ws("transition select(")
			p.expr(t.Expr, precLowest)
			p.ws(") {")
			p.indent++
			for _, c := range t.Cases {
				p.nl()
				if c.Value == nil {
					p.ws("default")
				} else {
					p.expr(c.Value, precLowest)
				}
				p.ws(" : " + c.Next + ";")
			}
			p.indent--
			p.nl()
			p.ws("}")
		}
	}
	p.indent--
	p.nl()
	p.ws("}")
}

func (p *pr) block(b *ast.BlockStmt) {
	if b == nil {
		p.ws("{ }")
		return
	}
	p.ws("{")
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.ws("}")
}

func (p *pr) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		p.expr(s.LHS, precLowest)
		p.ws(" = ")
		p.expr(s.RHS, precLowest)
		p.ws(";")
	case *ast.VarDeclStmt:
		p.ws(s.Type.String() + " " + s.Name)
		if s.Init != nil {
			p.ws(" = ")
			p.expr(s.Init, precLowest)
		}
		p.ws(";")
	case *ast.ConstDeclStmt:
		p.ws("const " + s.Type.String() + " " + s.Name + " = ")
		p.expr(s.Value, precLowest)
		p.ws(";")
	case *ast.IfStmt:
		p.ws("if (")
		p.expr(s.Cond, precLowest)
		p.ws(") ")
		p.block(s.Then)
		if s.Else != nil {
			p.ws(" else ")
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				p.block(e)
			case *ast.IfStmt:
				p.stmt(e)
			default:
				p.block(&ast.BlockStmt{Stmts: []ast.Stmt{e}})
			}
		}
	case *ast.BlockStmt:
		p.block(s)
	case *ast.CallStmt:
		p.expr(s.Call, precLowest)
		p.ws(";")
	case *ast.ReturnStmt:
		p.ws("return")
		if s.Value != nil {
			p.ws(" ")
			p.expr(s.Value, precLowest)
		}
		p.ws(";")
	case *ast.ExitStmt:
		p.ws("exit;")
	case *ast.EmptyStmt:
		p.ws(";")
	case *ast.SwitchStmt:
		p.ws("switch (")
		p.expr(s.Tag, precLowest)
		p.ws(") {")
		p.indent++
		for _, c := range s.Cases {
			p.nl()
			if c.Labels == nil {
				p.ws("default: ")
			} else {
				for i, l := range c.Labels {
					if i > 0 {
						p.nl()
					}
					p.expr(l, precLowest)
					p.ws(": ")
				}
			}
			p.block(c.Body)
		}
		p.indent--
		p.nl()
		p.ws("}")
	default:
		panic(fmt.Sprintf("printer: unknown statement %T", s))
	}
}

// Operator precedence levels; larger binds tighter. The parser mirrors this
// table exactly.
const (
	precLowest = iota
	precMux    // ?:
	precLOr    // ||
	precLAnd   // &&
	precBitOr  // |
	precBitXor // ^
	precBitAnd // &
	precEq     // == !=
	precRel    // < <= > >=
	precConcat // ++
	precShift  // << >>
	precAdd    // + - |+| |-|
	precMul    // *
	precUnary  // ! ~ - casts
	precPrim   // literals, idents, member, slice, call
)

// BinaryPrec returns the precedence level of a binary operator.
func BinaryPrec(op ast.BinaryOp) int {
	switch op {
	case ast.OpLOr:
		return precLOr
	case ast.OpLAnd:
		return precLAnd
	case ast.OpBitOr:
		return precBitOr
	case ast.OpBitXor:
		return precBitXor
	case ast.OpBitAnd:
		return precBitAnd
	case ast.OpEq, ast.OpNe:
		return precEq
	case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		return precRel
	case ast.OpConcat:
		return precConcat
	case ast.OpShl, ast.OpShr:
		return precShift
	case ast.OpAdd, ast.OpSub, ast.OpSatAdd, ast.OpSatSub:
		return precAdd
	case ast.OpMul:
		return precMul
	default:
		panic(fmt.Sprintf("printer: unknown binary operator %v", op))
	}
}

// expr prints e, parenthesizing when its precedence is below the context.
func (p *pr) expr(e ast.Expr, ctx int) {
	switch e := e.(type) {
	case *ast.Ident:
		p.ws(e.Name)
	case *ast.IntLit:
		if e.Width > 0 {
			fmt.Fprintf(&p.b, "%dw%d", e.Width, e.Val)
		} else {
			fmt.Fprintf(&p.b, "%d", e.Val)
		}
	case *ast.BoolLit:
		if e.Val {
			p.ws("true")
		} else {
			p.ws("false")
		}
	case *ast.UnaryExpr:
		p.paren(ctx > precUnary, func() {
			p.ws(e.Op.String())
			p.expr(e.X, precUnary)
		})
	case *ast.BinaryExpr:
		prec := BinaryPrec(e.Op)
		p.paren(ctx > prec, func() {
			// Left-associative: left child at prec, right child one tighter.
			p.expr(e.X, prec)
			p.ws(" " + e.Op.String() + " ")
			p.expr(e.Y, prec+1)
		})
	case *ast.MuxExpr:
		p.paren(ctx > precMux, func() {
			p.expr(e.Cond, precMux+1)
			p.ws(" ? ")
			p.expr(e.Then, precMux+1)
			p.ws(" : ")
			p.expr(e.Else, precMux)
		})
	case *ast.CastExpr:
		p.paren(ctx > precUnary, func() {
			p.ws("(" + e.To.String() + ") ")
			p.expr(e.X, precUnary)
		})
	case *ast.MemberExpr:
		p.expr(e.X, precPrim)
		p.ws("." + e.Member)
	case *ast.SliceExpr:
		p.expr(e.X, precPrim)
		fmt.Fprintf(&p.b, "[%d:%d]", e.Hi, e.Lo)
	case *ast.CallExpr:
		p.expr(e.Func, precPrim)
		p.ws("(")
		for i, a := range e.Args {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(a, precLowest)
		}
		p.ws(")")
	default:
		panic(fmt.Sprintf("printer: unknown expression %T", e))
	}
}

func (p *pr) paren(need bool, f func()) {
	if need {
		p.ws("(")
		f()
		p.ws(")")
		return
	}
	f()
}
