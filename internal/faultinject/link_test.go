package faultinject

import (
	"testing"
	"time"
)

// TestLinkPlanPure: the fault decision is a pure function of (seed,
// lease) — two plans with the same parameters agree everywhere, which is
// what makes a chaos run replayable across worker counts and processes.
func TestLinkPlanPure(t *testing.T) {
	mk := func() *LinkPlan {
		return &LinkPlan{Seed: 42, DropEvery: 3, SeverEvery: 5, DelayEvery: 7, DelayFor: time.Second}
	}
	a, b := mk(), mk()
	for lease := int64(0); lease < 500; lease++ {
		if a.At(lease) != b.At(lease) {
			t.Fatalf("lease %d: identical plans disagree: %+v vs %+v", lease, a.At(lease), b.At(lease))
		}
		if a.At(lease) != a.At(lease) {
			t.Fatalf("lease %d: repeated decision differs", lease)
		}
	}
}

// TestLinkPlanEnumerable: Leases agrees with Faulted, the rates land near
// 1-in-Every, and the per-class hashes are independent (a drop lease is
// not automatically a sever lease).
func TestLinkPlanEnumerable(t *testing.T) {
	p := &LinkPlan{Seed: 9, DropEvery: 4, SeverEvery: 4}
	const n = 1000
	faulted := p.Leases(n)
	if len(faulted) == 0 || len(faulted) == n {
		t.Fatalf("degenerate plan: %d of %d leases faulted", len(faulted), n)
	}
	seen := make(map[int64]bool, len(faulted))
	for _, id := range faulted {
		seen[id] = true
	}
	var drops, severs, both int
	for id := int64(0); id < n; id++ {
		f := p.At(id)
		if (f.Drop || f.Sever) != seen[id] {
			t.Fatalf("lease %d: Faulted/Leases disagree with At", id)
		}
		if f.Drop {
			drops++
		}
		if f.Sever {
			severs++
		}
		if f.Drop && f.Sever {
			both++
		}
	}
	// Rates: binomial(1000, 1/4) stays within ±1/3 of the mean with
	// overwhelming probability; this is a determinism check, not a
	// statistics test.
	for name, got := range map[string]int{"drop": drops, "sever": severs} {
		if got < n/6 || got > n/2 {
			t.Errorf("%s fired on %d of %d leases, want roughly 1 in 4", name, got, n)
		}
	}
	if both == drops || both == severs {
		t.Errorf("classes are correlated: %d drops, %d severs, %d both", drops, severs, both)
	}
}

// TestLinkPlanHookCounts: the worker-side hook counts fired faults by
// class, so a chaos test can assert every executed fault was absorbed.
func TestLinkPlanHookCounts(t *testing.T) {
	p := &LinkPlan{Seed: 1, DropEvery: 1, DelayEvery: 1, DelayFor: time.Millisecond}
	hook := p.Hook()
	for lease := int64(0); lease < 5; lease++ {
		f := hook(lease)
		if !f.Drop || f.Delay != time.Millisecond {
			t.Fatalf("lease %d: every-lease plan did not fire: %+v", lease, f)
		}
	}
	drops, severs, delays := p.FiredLink()
	if drops != 5 || severs != 0 || delays != 5 {
		t.Errorf("fired = %d/%d/%d, want 5 drops, 0 severs, 5 delays", drops, severs, delays)
	}
}
