// Package faultinject provides deterministic, seed-driven fault
// injection for the engine's supervised stages: the proof harness behind
// the robustness layer. A Plan decides purely from (plan seed, stage,
// slot) whether a stage body panics, stalls or errors, so a chaos run is
// replayable — the same plan injects the same faults at the same slots on
// any worker count — and enumerable: a test can list exactly which slots
// will fault and assert that the supervisor accounted for every one of
// them, and that the finding set over the non-faulted slots is unchanged.
package faultinject

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"
)

// Kind is the injected fault class.
type Kind int

const (
	// Panic makes the stage body panic (supervisor: quarantine record of
	// kind "panic", worker continues).
	Panic Kind = iota
	// Stall blocks the stage body past its stall budget (supervisor:
	// goroutine abandoned, quarantine record of kind "stall"). The block
	// is context-aware, so an abandoned stall still unwinds when the run
	// drains instead of leaking past process exit.
	Stall
	// Error makes the stage body return an error (the stage's
	// tool-limitation path: counted, never a finding, never a death).
	Error
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	default:
		return "error"
	}
}

// Spec configures injection for one stage.
type Spec struct {
	// Every injects at slots whose plan hash is ≡ 0 (mod Every): on
	// average one slot in Every faults. 0 disables the stage.
	Every int64
	// Kinds is the fault mix, picked deterministically by hash
	// (nil = all three kinds).
	Kinds []Kind
	// StallFor bounds an injected stall's sleep (0 = 30s); set it above
	// the engine's StageTimeout so the supervisor must abandon, and rely
	// on context cancellation — not the timer — to unwind at drain.
	StallFor time.Duration
}

// Plan is a deterministic fault schedule plus fired-fault accounting.
// The decision function is pure; the counters (how many faults actually
// fired, by kind) exist because not every planned fault executes — a
// stage is only consulted for units that reach it — and containment
// proofs must compare against what fired, not what was planned.
type Plan struct {
	// Seed keys the decision hash: two plans with different seeds fault
	// different slots.
	Seed int64
	// Stages maps engine stage names ("generate", "compile", "oracle",
	// "reduce") to their injection spec.
	Stages map[string]Spec

	panics, stalls, errors atomic.Uint64
}

// hash mixes (seed, stage, slot) into the decision word (FNV-1a over the
// three fields; stable across processes, unlike maphash).
func (p *Plan) hash(stage string, slot int64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(p.Seed) >> (8 * i))
		buf[8+i] = byte(uint64(slot) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(stage))
	return h.Sum64()
}

var allKinds = []Kind{Panic, Stall, Error}

// At is the pure decision: the fault this plan injects at (stage, slot),
// if any.
func (p *Plan) At(stage string, slot int64) (Kind, bool) {
	spec, ok := p.Stages[stage]
	if !ok || spec.Every <= 0 {
		return 0, false
	}
	h := p.hash(stage, slot)
	if h%uint64(spec.Every) != 0 {
		return 0, false
	}
	kinds := spec.Kinds
	if len(kinds) == 0 {
		kinds = allKinds
	}
	return kinds[(h/uint64(spec.Every))%uint64(len(kinds))], true
}

// Slots enumerates the slots in [start, start+n) where the plan faults
// stage — the test-side oracle for "which programs should be missing".
func (p *Plan) Slots(stage string, start, n int64) []int64 {
	var out []int64
	for s := start; s < start+n; s++ {
		if _, ok := p.At(stage, s); ok {
			out = append(out, s)
		}
	}
	return out
}

// FaultedAnywhere reports whether any configured stage faults this slot —
// the invariance tests' "this program's verdict may legitimately be
// missing" predicate.
func (p *Plan) FaultedAnywhere(slot int64) bool {
	for stage := range p.Stages {
		if _, ok := p.At(stage, slot); ok {
			return true
		}
	}
	return false
}

// Hook adapts the plan to core.EngineConfig.FaultHook. It executes the
// planned fault: panics panic, stalls block (context-aware) for StallFor,
// errors return a recognizable error. Fired counters update before the
// fault executes, so even a panic is counted.
func (p *Plan) Hook() func(ctx context.Context, stage string, slot int64) error {
	return func(ctx context.Context, stage string, slot int64) error {
		kind, ok := p.At(stage, slot)
		if !ok {
			return nil
		}
		switch kind {
		case Panic:
			p.panics.Add(1)
			panic(fmt.Sprintf("faultinject: injected panic at %s slot %d", stage, slot))
		case Stall:
			p.stalls.Add(1)
			d := p.Stages[stage].StallFor
			if d <= 0 {
				d = 30 * time.Second
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
			// The supervisor abandoned this invocation long ago (or the
			// run drained); the return value is never read.
			return nil
		default:
			p.errors.Add(1)
			return fmt.Errorf("faultinject: injected error at %s slot %d", stage, slot)
		}
	}
}

// Fired reports how many injected faults actually executed, by kind.
func (p *Plan) Fired() (panics, stalls, errors uint64) {
	return p.panics.Load(), p.stalls.Load(), p.errors.Load()
}
