package faultinject

import (
	"context"
	"strings"
	"testing"
	"time"
)

// At is a pure function of (seed, stage, slot): repeated queries agree,
// different seeds give different schedules, and Slots enumerates exactly
// the slots At admits.
func TestPlanDeterminism(t *testing.T) {
	p := &Plan{Seed: 3, Stages: map[string]Spec{"compile": {Every: 4}}}
	for slot := int64(0); slot < 256; slot++ {
		k1, ok1 := p.At("compile", slot)
		k2, ok2 := p.At("compile", slot)
		if k1 != k2 || ok1 != ok2 {
			t.Fatalf("At not pure at slot %d", slot)
		}
		if _, ok := p.At("oracle", slot); ok {
			t.Fatalf("unconfigured stage faulted at slot %d", slot)
		}
	}
	slots := p.Slots("compile", 0, 256)
	if len(slots) == 0 {
		t.Fatal("Every=4 over 256 slots fired nothing")
	}
	want := map[int64]bool{}
	for _, s := range slots {
		want[s] = true
	}
	for slot := int64(0); slot < 256; slot++ {
		if _, ok := p.At("compile", slot); ok != want[slot] {
			t.Fatalf("Slots and At disagree at %d", slot)
		}
		if p.FaultedAnywhere(slot) != want[slot] {
			t.Fatalf("FaultedAnywhere and At disagree at %d", slot)
		}
	}
	other := &Plan{Seed: 4, Stages: p.Stages}
	if same := other.Slots("compile", 0, 256); len(same) == len(slots) {
		identical := true
		for i := range same {
			if same[i] != slots[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced the identical schedule")
		}
	}
}

// The hook executes what At plans — panic/stall/error — and Fired counts
// only executed faults.
func TestHookFiresPlannedKinds(t *testing.T) {
	p := &Plan{Seed: 9, Stages: map[string]Spec{
		"oracle": {Every: 3, StallFor: time.Millisecond},
	}}
	hook := p.Hook()
	ctx := context.Background()
	var wantPanics, wantStalls, wantErrors uint64
	for slot := int64(0); slot < 60; slot++ {
		kind, ok := p.At("oracle", slot)
		if !ok {
			if err := hook(ctx, "oracle", slot); err != nil {
				t.Fatalf("unplanned slot %d returned %v", slot, err)
			}
			continue
		}
		switch kind {
		case Panic:
			wantPanics++
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("slot %d: planned panic did not fire", slot)
					}
					if !strings.Contains(r.(string), "injected panic") {
						t.Fatalf("slot %d: unexpected panic %v", slot, r)
					}
				}()
				hook(ctx, "oracle", slot)
			}()
		case Stall:
			wantStalls++
			if err := hook(ctx, "oracle", slot); err != nil {
				t.Fatalf("slot %d: stall returned %v", slot, err)
			}
		case Error:
			wantErrors++
			err := hook(ctx, "oracle", slot)
			if err == nil || !strings.Contains(err.Error(), "injected error") {
				t.Fatalf("slot %d: planned error got %v", slot, err)
			}
		}
	}
	panics, stalls, errors := p.Fired()
	if panics != wantPanics || stalls != wantStalls || errors != wantErrors {
		t.Fatalf("Fired() = (%d,%d,%d), executed (%d,%d,%d)",
			panics, stalls, errors, wantPanics, wantStalls, wantErrors)
	}
	if wantPanics == 0 || wantStalls == 0 || wantErrors == 0 {
		t.Fatalf("kind mix too sparse over 60 slots: (%d,%d,%d)", wantPanics, wantStalls, wantErrors)
	}
}

// An injected stall must unwind on context cancellation, not only on its
// timer — that is what keeps abandoned supervisor goroutines from
// outliving the run.
func TestStallUnwindsOnCancel(t *testing.T) {
	p := &Plan{Seed: 1, Stages: map[string]Spec{
		"compile": {Every: 1, Kinds: []Kind{Stall}, StallFor: time.Hour},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		p.Hook()(ctx, "compile", 0)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stall ignored context cancellation")
	}
}
