package faultinject

import (
	"hash/fnv"
	"sync/atomic"
	"time"
)

// LinkFault is one injected coordinator↔worker link fault, decided per
// lease: Drop swallows the worker's result frame (the lease expires and
// re-issues), Sever closes the connection after the lease runs (every
// lease the connection still holds returns to pending), Delay stalls the
// result send (exercises the expiry/duplicate-result path when it
// exceeds the lease timeout).
type LinkFault struct {
	Drop  bool
	Sever bool
	Delay time.Duration
}

// LinkPlan decides link faults purely from (plan seed, lease ID), the
// fleet-link analogue of Plan's (seed, stage, slot) decision: a chaos
// run is replayable — the same plan severs the same leases on any
// worker count or arrival order — and enumerable, so a test can assert
// the re-issue machinery absorbed every planned fault.
type LinkPlan struct {
	// Seed keys the decision hash.
	Seed int64
	// DropEvery / SeverEvery / DelayEvery inject at leases whose hash is
	// ≡ 0 (mod Every): on average one lease in Every. 0 disables that
	// fault class. A lease matching several classes suffers all of them
	// (delay, then drop, then sever — the worker applies them in that
	// order).
	DropEvery, SeverEvery, DelayEvery int64
	// DelayFor is the injected delay (0 = 2s).
	DelayFor time.Duration

	drops, severs, delays atomic.Uint64
}

// hash mixes (seed, class, lease) into the decision word — FNV-1a, the
// same construction Plan uses, so decisions are stable across processes.
func (p *LinkPlan) hash(class string, lease int64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(p.Seed) >> (8 * i))
		buf[8+i] = byte(uint64(lease) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(class))
	return h.Sum64()
}

func (p *LinkPlan) hit(class string, every, lease int64) bool {
	return every > 0 && p.hash(class, lease)%uint64(every) == 0
}

// At is the pure decision: the faults this plan injects on lease's
// result path, if any.
func (p *LinkPlan) At(lease int64) LinkFault {
	f := LinkFault{
		Drop:  p.hit("drop", p.DropEvery, lease),
		Sever: p.hit("sever", p.SeverEvery, lease),
	}
	if p.hit("delay", p.DelayEvery, lease) {
		f.Delay = p.DelayFor
		if f.Delay <= 0 {
			f.Delay = 2 * time.Second
		}
	}
	return f
}

// Faulted reports whether lease suffers any fault — the test-side "this
// lease must have been re-issued" predicate.
func (p *LinkPlan) Faulted(lease int64) bool {
	f := p.At(lease)
	return f.Drop || f.Sever || f.Delay > 0
}

// Leases enumerates the lease IDs in [0, n) the plan faults.
func (p *LinkPlan) Leases(n int64) []int64 {
	var out []int64
	for id := int64(0); id < n; id++ {
		if p.Faulted(id) {
			out = append(out, id)
		}
	}
	return out
}

// Hook adapts the plan to the fleet worker's link-fault hook, counting
// fired faults (a lease is only consulted when a worker actually
// completes it, so containment proofs compare against Fired, not the
// plan).
func (p *LinkPlan) Hook() func(lease int64) LinkFault {
	return func(lease int64) LinkFault {
		f := p.At(lease)
		if f.Drop {
			p.drops.Add(1)
		}
		if f.Sever {
			p.severs.Add(1)
		}
		if f.Delay > 0 {
			p.delays.Add(1)
		}
		return f
	}
}

// FiredLink reports how many injected link faults executed, by class.
func (p *LinkPlan) FiredLink() (drops, severs, delays uint64) {
	return p.drops.Load(), p.severs.Load(), p.delays.Load()
}
