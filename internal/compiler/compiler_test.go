package compiler_test

import (
	"math/rand"
	"strings"
	"testing"

	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/eval"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/validate"
)

// corpus programs exercise every pass: functions to inline, direct action
// calls, exits, slices, side effects in expressions, dead stores,
// constants to fold, multiplications to reduce, and ifs to predicate.
var corpus = []struct {
	name string
	src  string
}{
	{"fig5a-shape", `
header H { bit<8> a; }
struct S { H h; }
control ig(inout S hdr) {
    bit<8> test(inout bit<8> x) {
        return x;
    }
    apply {
        bit<8> r = test(hdr.h.a);
        hdr.h.a = hdr.h.a + r;
    }
}
V1Switch(ig) main;
`},
	{"fig5d-shape", `
header H { bit<8> a; }
struct S { H h; }
control ig(inout S hdr) {
    action a(inout bit<7> val) {
        hdr.h.a[0:0] = 1w0;
        val = val + 7w1;
    }
    apply {
        a(hdr.h.a[7:1]);
    }
}
V1Switch(ig) main;
`},
	{"fig5f-shape", `
header Eth { bit<16> eth_type; }
struct S { Eth eth; }
control ig(inout S h) {
    action a(inout bit<16> val) {
        val = 16w3;
        exit;
    }
    apply {
        a(h.eth.eth_type);
        h.eth.eth_type = 16w99;
    }
}
V1Switch(ig) main;
`},
	{"sideeffects", `
control ig(inout bit<8> x, inout bit<8> y) {
    bit<8> bump(inout bit<8> v) {
        v = v + 8w1;
        return v;
    }
    apply {
        x = bump(y) + bump(y) * 8w2;
        if (x > 8w10 && bump(y) == 8w3) {
            x = 8w0;
        }
    }
}
V1Switch(ig) main;
`},
	{"folding", `
control ig(inout bit<8> x) {
    apply {
        x = x * 8w4 + (8w2 + 8w3) * 8w1;
        if (8w3 < 8w5) {
            x = x + 8w0;
        } else {
            x = x - 8w7;
        }
        x = x ^ x;
        x = (x | 8w0) & 8w255;
    }
}
V1Switch(ig) main;
`},
	{"predication", `
header H { bit<8> a; bit<8> b; }
struct S { H h; }
control ig(inout S hdr) {
    action flip() {
        if (hdr.h.a == 8w1) {
            hdr.h.a = 8w2;
            if (hdr.h.b > 8w7) {
                hdr.h.b = hdr.h.a;
            }
        } else {
            hdr.h.b = 8w1;
        }
    }
    table t {
        key = { hdr.h.a : exact; }
        actions = { flip; NoAction; }
        default_action = flip();
    }
    apply { t.apply(); }
}
V1Switch(ig) main;
`},
	{"deadstores", `
control ig(inout bit<8> x) {
    apply {
        bit<8> unused = x + 8w1;
        bit<8> t = 8w3;
        t = 8w4;
        x = x + t;
        bit<8> late = x;
        late = late + 8w1;
    }
}
V1Switch(ig) main;
`},
	{"copyprop", `
control ig(inout bit<8> x, inout bit<8> y) {
    apply {
        bit<8> a = x;
        bit<8> b = a;
        y = b + a;
        if (y == x) {
            bit<8> c = y;
            x = c;
        }
    }
}
V1Switch(ig) main;
`},
	{"validity", `
header H { bit<8> a; }
struct S { H h; }
control ig(inout S hdr, inout bit<8> y) {
    apply {
        if (!hdr.h.isValid()) {
            hdr.h.setValid();
            hdr.h.a = y;
        } else {
            y = hdr.h.a;
            hdr.h.setInvalid();
        }
    }
}
V1Switch(ig) main;
`},
	{"mux-calls", `
control ig(inout bit<8> x, inout bit<8> y) {
    bit<8> f(in bit<8> v) {
        return v + 8w1;
    }
    apply {
        x = y > 8w4 ? f(x) : f(y);
    }
}
V1Switch(ig) main;
`},
}

func compileOK(t *testing.T, src string) *compiler.Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	c := compiler.New(compiler.DefaultPasses()...)
	res, err := c.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

// TestPipelinePreservesSemantics is the central compiler test: with no
// seeded defects, translation validation across every pass of every
// corpus program must find zero inequivalences.
func TestPipelinePreservesSemantics(t *testing.T) {
	for _, tc := range corpus {
		t.Run(tc.name, func(t *testing.T) {
			res := compileOK(t, tc.src)
			verdicts, err := validate.Snapshots(res, validate.Options{})
			if err != nil {
				t.Fatalf("validate: %v", err)
			}
			for _, f := range validate.Failures(verdicts) {
				t.Errorf("MISCOMPILATION: %s\n--- before (%s) ---\n%s\n--- after (%s) ---\n%s",
					f, f.PassA, textOf(res, f.PassA), f.PassB, textOf(res, f.PassB))
			}
		})
	}
}

func textOf(res *compiler.Result, pass string) string {
	for _, s := range res.Snapshots {
		if s.Pass == pass {
			return s.Text
		}
	}
	return "(missing)"
}

// TestPipelineConcreteDifferential cross-checks initial vs final program
// behaviour with the concrete evaluator on random inputs — a second,
// independent oracle next to translation validation.
func TestPipelineConcreteDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, tc := range corpus {
		if strings.Contains(tc.src, "table") {
			continue // table configs differ in shape; covered by TV
		}
		t.Run(tc.name, func(t *testing.T) {
			res := compileOK(t, tc.src)
			first := res.Snapshots[0].Prog
			last := res.Final
			ctrlA := first.Controls()[0]
			ctrlB := last.Controls()[0]
			for trial := 0; trial < 30; trial++ {
				argsA := randomArgs(ctrlA.Params, r)
				argsB := cloneArgs(argsA)
				inA := eval.New(first, eval.ZeroUndef, nil)
				inB := eval.New(last, eval.ZeroUndef, nil)
				if err := inA.ExecControl(ctrlA, argsA); err != nil {
					t.Fatalf("eval A: %v", err)
				}
				if err := inB.ExecControl(ctrlB, argsB); err != nil {
					t.Fatalf("eval B: %v", err)
				}
				for i := range argsA {
					if !eval.Equal(argsA[i], argsB[i]) {
						t.Fatalf("trial %d: initial and final programs disagree on arg %d:\n A: %s\n B: %s\n--- final ---\n%s",
							trial, i, argsA[i], argsB[i], res.Snapshots[len(res.Snapshots)-1].Text)
					}
				}
			}
		})
	}
}

func randomArgs(params []ast.Param, r *rand.Rand) []eval.Value {
	var out []eval.Value
	for _, p := range params {
		out = append(out, randomValue(p.Type, r))
	}
	return out
}

func randomValue(t ast.Type, r *rand.Rand) eval.Value {
	switch t := t.(type) {
	case *ast.BitType:
		return &eval.BitVal{Width: t.Width, V: ast.MaskWidth(r.Uint64(), t.Width)}
	case *ast.BoolType:
		return &eval.BoolVal{V: r.Intn(2) == 1}
	case *ast.HeaderType:
		h := eval.NewValue(t, eval.ZeroUndef).(*eval.HeaderVal)
		h.Valid = r.Intn(2) == 1
		for _, f := range t.Fields {
			h.F[f.Name] = randomValue(f.Type, r)
		}
		return h
	case *ast.StructType:
		s := eval.NewValue(t, eval.ZeroUndef).(*eval.StructVal)
		for _, f := range t.Fields {
			s.F[f.Name] = randomValue(f.Type, r)
		}
		return s
	default:
		panic("randomValue: unsupported type")
	}
}

func cloneArgs(args []eval.Value) []eval.Value {
	out := make([]eval.Value, len(args))
	for i, a := range args {
		out[i] = a.Clone()
	}
	return out
}

// TestPassesNormalize checks structural post-conditions of key passes.
func TestPassesNormalize(t *testing.T) {
	res := compileOK(t, corpus[3].src) // "sideeffects"
	final := res.Final
	// After inlining, no user calls remain anywhere.
	for _, c := range final.Controls() {
		ast.InspectStmt(c.Apply, nil, func(e ast.Expr) bool {
			if call, ok := e.(*ast.CallExpr); ok {
				if _, isM := call.Func.(*ast.MemberExpr); !isM {
					if id, _ := call.Func.(*ast.Ident); id != nil && id.Name != "NoAction" {
						t.Errorf("user call %s survived inlining", id.Name)
					}
				}
			}
			return true
		})
	}
}

// TestCrashSurfacesAsCrashError ensures pass panics become CrashError
// (the classification Gauntlet's crash-bug hunting depends on).
func TestCrashSurfacesAsCrashError(t *testing.T) {
	prog, err := parser.Parse(corpus[0].src)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	c := compiler.New(panicPass{})
	_, cerr := c.Compile(prog)
	ce, ok := cerr.(*compiler.CrashError)
	if !ok {
		t.Fatalf("error = %v (%T), want CrashError", cerr, cerr)
	}
	if ce.Pass != "Panicky" || !strings.Contains(ce.Msg, "assertion") {
		t.Errorf("unexpected crash fingerprint: %+v", ce)
	}
}

type panicPass struct{}

func (panicPass) Name() string { return "Panicky" }
func (panicPass) Run(p *ast.Program) (*ast.Program, error) {
	panic("assertion failed: visitor invariant violated")
}
