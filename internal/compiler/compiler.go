// Package compiler implements a nanopass P4 compiler front and mid end
// modelled on P4C's architecture (§3 of the paper): a composable sequence
// of small passes, each of which transforms the program and emits the
// result as P4 source. The driver re-parses and re-checks every emitted
// program — exactly the instrumentation Gauntlet's translation validation
// consumes ("we use p4test to emit a P4 program after each compiler pass",
// §5.2) — and skips snapshots whose printed form hashes identically to
// their predecessor.
//
// Crash bugs (abnormal pass termination) surface as *CrashError; emitted
// programs that no longer parse or type-check surface as
// *InvalidTransformError (the paper's "invalid transformations", §7.2).
package compiler

import (
	"fmt"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
)

// Pass is one compiler pass. Run receives a private clone of the program
// and returns the transformed program (possibly the same object).
type Pass interface {
	// Name identifies the pass in snapshots and bug reports.
	Name() string
	// Run transforms the program.
	Run(prog *ast.Program) (*ast.Program, error)
}

// Location classifies where in the compiler a pass (and hence a bug)
// lives. Mirrors Table 3 of the paper.
type Location int

// Pass locations.
const (
	FrontEnd Location = iota
	MidEnd
	BackEnd
)

// String renders the location as in Table 3.
func (l Location) String() string {
	switch l {
	case FrontEnd:
		return "front end"
	case MidEnd:
		return "mid end"
	default:
		return "back end"
	}
}

// CrashError reports abnormal termination of a pass: the analogue of a
// compiler crash (assertion violation, segmentation fault) in the paper's
// taxonomy.
type CrashError struct {
	Pass string
	// Msg is the assertion/panic message; Gauntlet deduplicates crash
	// bugs by this fingerprint (§7.3).
	Msg string
}

// Error implements the error interface.
func (e *CrashError) Error() string {
	return fmt.Sprintf("compiler crash in pass %s: %s", e.Pass, e.Msg)
}

// InvalidTransformError reports that the program emitted after a pass no
// longer parses or type-checks (§7.2 "invalid transformations").
type InvalidTransformError struct {
	Pass string
	Err  error
}

// Error implements the error interface.
func (e *InvalidTransformError) Error() string {
	return fmt.Sprintf("invalid transformation after pass %s: %v", e.Pass, e.Err)
}

// PassEffect records one pass execution in a compilation trace: whether
// the pass rewrote the program (changed its printed form) and by how much
// the emitted source grew or shrank. The trace is the compiler-side half
// of the coverage signal — internal/coverage folds it into a program's
// coverage profile, so the corpus engine can tell "this program made
// StrengthReduction fire" apart from "this one sailed through untouched"
// without instrumenting the passes themselves.
type PassEffect struct {
	Pass string
	// Rewrote reports whether the pass changed the printed program.
	Rewrote bool
	// TextDelta is the emitted-source byte-length change (0 when the pass
	// left the program alone).
	TextDelta int
}

// Snapshot is the emitted program after one pass that changed it.
type Snapshot struct {
	Pass string
	// Prog is the re-parsed, re-checked program (what translation
	// validation interprets).
	Prog *ast.Program
	// Text is the emitted P4 source.
	Text string
	// Hash fingerprints Text.
	Hash uint64
}

// Result is the outcome of a successful compilation.
type Result struct {
	// Snapshots holds the initial program plus one entry per pass that
	// changed the printed form, in pass order.
	Snapshots []Snapshot
	// Trace records every pass that ran, in pipeline order — including the
	// ones that did not change the program (which Snapshots skips).
	Trace []PassEffect
	// Final is the fully transformed program.
	Final *ast.Program
}

// Compiler drives a pass pipeline.
type Compiler struct {
	passes []Pass
	// SkipReparse disables the emit/re-parse/re-check instrumentation
	// (used by throughput benchmarks).
	SkipReparse bool
}

// New creates a compiler with the given pass pipeline.
func New(passes ...Pass) *Compiler { return &Compiler{passes: passes} }

// Passes returns the pipeline.
func (c *Compiler) Passes() []Pass { return c.passes }

// Compile runs the pipeline over prog (which is not mutated). It returns
// the per-pass snapshots for translation validation. Pass panics are
// converted to *CrashError.
func (c *Compiler) Compile(prog *ast.Program) (res *Result, err error) {
	cur := ast.CloneProgram(prog)
	if err := types.Check(cur); err != nil {
		return nil, fmt.Errorf("input program does not type-check: %w", err)
	}
	text := printer.Print(cur)
	res = &Result{Snapshots: []Snapshot{{
		Pass: "initial",
		Prog: cur,
		Text: text,
		Hash: printer.Fingerprint(cur),
	}}}

	prevLen := len(text)
	for _, p := range c.passes {
		next, perr := c.runPass(p, cur)
		if perr != nil {
			return nil, perr
		}
		hash := printer.Fingerprint(next)
		if hash == res.Snapshots[len(res.Snapshots)-1].Hash {
			// The pass did not change the program; skip the snapshot
			// (§5.2: "ignore any emitted intermediate program that has a
			// hash identical to its predecessor").
			res.Trace = append(res.Trace, PassEffect{Pass: p.Name()})
			cur = next
			continue
		}
		emitted := printer.Print(next)
		res.Trace = append(res.Trace, PassEffect{
			Pass: p.Name(), Rewrote: true, TextDelta: len(emitted) - prevLen,
		})
		prevLen = len(emitted)
		snapProg := next
		if !c.SkipReparse {
			// Re-parse and re-check the emitted text: catches ToP4 and
			// invalid-transformation bugs.
			reparsed, rerr := parser.Parse(emitted)
			if rerr != nil {
				return nil, &InvalidTransformError{Pass: p.Name(), Err: rerr}
			}
			if terr := types.Check(reparsed); terr != nil {
				return nil, &InvalidTransformError{Pass: p.Name(), Err: terr}
			}
			snapProg = reparsed
		}
		res.Snapshots = append(res.Snapshots, Snapshot{
			Pass: p.Name(),
			Prog: snapProg,
			Text: emitted,
			Hash: hash,
		})
		cur = next
	}
	res.Final = cur
	return res, nil
}

// runPass executes one pass on a clone, converting panics to CrashError.
func (c *Compiler) runPass(p Pass, prog *ast.Program) (out *ast.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CrashError{Pass: p.Name(), Msg: fmt.Sprint(r)}
		}
	}()
	out, err = p.Run(ast.CloneProgram(prog))
	if err != nil {
		// An error return is abnormal pass termination just like a panic
		// (the paper's crash taxonomy does not care how the pass died);
		// classifying it here keeps every consumer — campaign, fuzzing
		// engine, reducer predicates — treating it as a finding rather
		// than a tool limitation.
		return nil, &CrashError{Pass: p.Name(), Msg: err.Error()}
	}
	if out == nil {
		return nil, &CrashError{Pass: p.Name(), Msg: "pass returned no program"}
	}
	return out, nil
}
