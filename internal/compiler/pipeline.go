package compiler

import "gauntlet/internal/compiler/passes"

// FrontEndPasses returns the reference front-end pipeline in P4C order:
// name uniquification, type checking, side-effect normalization, inlining
// of functions and direct action calls, and def-use cleanup.
func FrontEndPasses() []Pass {
	return []Pass{
		passes.TypeChecking{},
		passes.UniqueNames{},
		passes.SideEffectOrdering{},
		passes.InlineFunctions{},
		passes.RemoveActionParameters{},
		passes.SimplifyDefUse{},
	}
}

// MidEndPasses returns the reference mid-end pipeline: folding, strength
// reduction, predication (straight-lining action bodies for hardware
// targets), copy propagation, def-use cleanup and dead-code removal.
func MidEndPasses() []Pass {
	return []Pass{
		passes.ConstantFolding{},
		passes.StrengthReduction{},
		passes.Predication{},
		passes.CopyPropagation{},
		passes.SimplifyDefUse{},
		passes.DeadCode{},
		passes.TypeChecking{},
	}
}

// DefaultPasses returns the full front+mid pipeline used by p4test-style
// compilation (§5.2).
func DefaultPasses() []Pass {
	return append(FrontEndPasses(), MidEndPasses()...)
}

// LocationOf classifies a pass name into front/mid/back end (Table 3).
func LocationOf(name string) Location {
	switch name {
	case "TypeChecking", "UniqueNames", "SideEffectOrdering",
		"InlineFunctions", "RemoveActionParameters", "SimplifyDefUse":
		return FrontEnd
	case "ConstantFolding", "StrengthReduction", "Predication",
		"CopyPropagation", "DeadCode":
		return MidEnd
	default:
		return BackEnd
	}
}
