// Package passes implements the reference front- and mid-end passes of the
// nanopass compiler, mirroring the P4C passes the paper names:
// UniqueNames, SideEffectOrdering, InlineFunctions, RemoveActionParameters,
// SimplifyDefUse, ConstantFolding, StrengthReduction, Predication,
// CopyPropagation and DeadCode. The seeded-defect registry (internal/bugs)
// wraps these references with the paper's 78 bugs.
package passes

import (
	"fmt"

	"gauntlet/internal/p4/ast"
)

// NameGen produces fresh identifiers that cannot collide with any name in
// the program.
type NameGen struct {
	used map[string]bool
	n    int
}

// NewNameGen scans the program for every identifier in use.
func NewNameGen(prog *ast.Program) *NameGen {
	g := &NameGen{used: map[string]bool{}}
	for _, d := range prog.Decls {
		g.scanDecl(d)
	}
	return g
}

func (g *NameGen) scanDecl(d ast.Decl) {
	g.used[d.DeclName()] = true
	switch d := d.(type) {
	case *ast.ActionDecl:
		g.scanParams(d.Params)
		g.scanStmt(d.Body)
	case *ast.FunctionDecl:
		g.scanParams(d.Params)
		g.scanStmt(d.Body)
	case *ast.ControlDecl:
		g.scanParams(d.Params)
		for _, l := range d.Locals {
			g.scanDecl(l)
		}
		g.scanStmt(d.Apply)
	case *ast.ParserDecl:
		g.scanParams(d.Params)
		for i := range d.States {
			for _, s := range d.States[i].Stmts {
				g.scanStmt(s)
			}
		}
	}
}

func (g *NameGen) scanParams(ps []ast.Param) {
	for _, p := range ps {
		g.used[p.Name] = true
	}
}

func (g *NameGen) scanStmt(s ast.Stmt) {
	ast.InspectStmt(s, func(st ast.Stmt) bool {
		switch st := st.(type) {
		case *ast.VarDeclStmt:
			g.used[st.Name] = true
		case *ast.ConstDeclStmt:
			g.used[st.Name] = true
		}
		return true
	}, func(e ast.Expr) bool {
		if id, ok := e.(*ast.Ident); ok {
			g.used[id.Name] = true
		}
		return true
	})
}

// Fresh returns an unused identifier with the given prefix.
func (g *NameGen) Fresh(prefix string) string {
	for {
		g.n++
		name := fmt.Sprintf("%s_%d", prefix, g.n)
		if !g.used[name] {
			g.used[name] = true
			return name
		}
	}
}

// scopes is a lightweight type environment for pass-internal inference on
// checked programs (all declared types resolved, all literals sized).
type scopes struct {
	prog  *ast.Program
	ctrl  *ast.ControlDecl
	stack []map[string]ast.Type
}

func newScopes(prog *ast.Program, ctrl *ast.ControlDecl) *scopes {
	s := &scopes{prog: prog, ctrl: ctrl}
	s.push()
	// Top-level constants.
	for _, d := range prog.Decls {
		if c, ok := d.(*ast.ConstDecl); ok {
			s.declare(c.Name, c.Type)
		}
	}
	if ctrl != nil {
		s.push()
		for _, p := range ctrl.Params {
			s.declare(p.Name, p.Type)
		}
		for _, l := range ctrl.Locals {
			switch l := l.(type) {
			case *ast.VarDecl:
				s.declare(l.Name, l.Type)
			case *ast.ConstDecl:
				s.declare(l.Name, l.Type)
			}
		}
	}
	return s
}

func (s *scopes) push() { s.stack = append(s.stack, map[string]ast.Type{}) }
func (s *scopes) pop()  { s.stack = s.stack[:len(s.stack)-1] }

func (s *scopes) declare(name string, t ast.Type) {
	s.stack[len(s.stack)-1][name] = t
}

func (s *scopes) lookup(name string) ast.Type {
	for i := len(s.stack) - 1; i >= 0; i-- {
		if t, ok := s.stack[i][name]; ok {
			return t
		}
	}
	return nil
}

// declareStmt registers declarations introduced by a statement.
func (s *scopes) declareStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.VarDeclStmt:
		s.declare(st.Name, st.Type)
	case *ast.ConstDeclStmt:
		s.declare(st.Name, st.Type)
	}
}

// returnTypeOf resolves the return type of a named callable (nil if not a
// function).
func (s *scopes) returnTypeOf(name string) ast.Type {
	if s.ctrl != nil {
		if f, ok := s.ctrl.LocalByName(name).(*ast.FunctionDecl); ok {
			return f.Return
		}
	}
	if f, ok := s.prog.DeclByName(name).(*ast.FunctionDecl); ok {
		return f.Return
	}
	return nil
}

// typeOf infers the type of an expression in a checked program. It returns
// nil when the type cannot be determined (callers must handle this as an
// internal error).
func (s *scopes) typeOf(e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.Ident:
		return s.lookup(e.Name)
	case *ast.IntLit:
		w := e.Width
		if w == 0 {
			w = 64
		}
		return &ast.BitType{Width: w}
	case *ast.BoolLit:
		return &ast.BoolType{}
	case *ast.UnaryExpr:
		if e.Op == ast.OpLNot {
			return &ast.BoolType{}
		}
		return s.typeOf(e.X)
	case *ast.BinaryExpr:
		switch {
		case e.Op.IsComparison() || e.Op.IsLogical():
			return &ast.BoolType{}
		case e.Op == ast.OpConcat:
			xt, _ := s.typeOf(e.X).(*ast.BitType)
			yt, _ := s.typeOf(e.Y).(*ast.BitType)
			if xt == nil || yt == nil {
				return nil
			}
			return &ast.BitType{Width: xt.Width + yt.Width}
		default:
			return s.typeOf(e.X)
		}
	case *ast.MuxExpr:
		return s.typeOf(e.Then)
	case *ast.CastExpr:
		return e.To
	case *ast.MemberExpr:
		switch ct := s.typeOf(e.X).(type) {
		case *ast.HeaderType:
			if f, ok := ct.FieldByName(e.Member); ok {
				return f.Type
			}
		case *ast.StructType:
			if f, ok := ct.FieldByName(e.Member); ok {
				return f.Type
			}
		}
		return nil
	case *ast.SliceExpr:
		return &ast.BitType{Width: e.Hi - e.Lo + 1}
	case *ast.CallExpr:
		if m, ok := e.Func.(*ast.MemberExpr); ok {
			if m.Member == "isValid" {
				return &ast.BoolType{}
			}
			return &ast.VoidType{}
		}
		if id, ok := e.Func.(*ast.Ident); ok {
			if rt := s.returnTypeOf(id.Name); rt != nil {
				return rt
			}
		}
		return &ast.VoidType{}
	default:
		return nil
	}
}

// mayEscape reports whether the statement tree contains a return or exit.
func mayEscape(s ast.Stmt) bool {
	found := false
	ast.InspectStmt(s, func(st ast.Stmt) bool {
		switch st.(type) {
		case *ast.ReturnStmt, *ast.ExitStmt:
			found = true
			return false
		}
		return true
	}, nil)
	return found
}

// substituteIdents renames identifiers per the mapping, in place, across a
// statement tree. Member names are untouched.
func substituteIdents(s ast.Stmt, ren map[string]string) {
	ast.InspectStmt(s, nil, func(e ast.Expr) bool {
		if id, ok := e.(*ast.Ident); ok {
			if nn, ok := ren[id.Name]; ok {
				id.Name = nn
			}
		}
		return true
	})
}

// isBuiltinCallee reports whether a call target is a builtin method
// (validity, apply, packet methods) rather than a user callable.
func isBuiltinCallee(e *ast.CallExpr) bool {
	_, ok := e.Func.(*ast.MemberExpr)
	return ok
}

// calleeName returns the called identifier name, or "".
func calleeName(e *ast.CallExpr) string {
	if id, ok := e.Func.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
