package passes

import (
	"gauntlet/internal/p4/ast"
)

// SideEffectOrdering normalizes expressions so every user call occurs
// either as a call statement or as the sole right-hand side of an
// assignment, preserving left-to-right evaluation order and
// short-circuiting. After this pass, inlining can treat calls uniformly.
//
// Copy-in/copy-out interaction with side-effect ordering was one of the
// paper's richest bug sources (§7.2: "a significant portion of the
// semantic bugs we identified were caused by erroneous passes that perform
// incorrect argument evaluation and side effect ordering").
type SideEffectOrdering struct{}

// Name identifies the pass.
func (SideEffectOrdering) Name() string { return "SideEffectOrdering" }

// Run normalizes every control in the program.
func (p SideEffectOrdering) Run(prog *ast.Program) (*ast.Program, error) {
	gen := NewNameGen(prog)
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			sc := newScopes(prog, d)
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					l.Body = seBlock(sc, gen, l.Params, l.Body)
				case *ast.FunctionDecl:
					l.Body = seBlock(sc, gen, l.Params, l.Body)
				}
			}
			d.Apply = seBlock(sc, gen, nil, d.Apply)
		case *ast.FunctionDecl:
			sc := newScopes(prog, nil)
			d.Body = seBlock(sc, gen, d.Params, d.Body)
		case *ast.ActionDecl:
			sc := newScopes(prog, nil)
			d.Body = seBlock(sc, gen, d.Params, d.Body)
		}
	}
	return prog, nil
}

func seBlock(sc *scopes, gen *NameGen, params []ast.Param, b *ast.BlockStmt) *ast.BlockStmt {
	if b == nil {
		return nil
	}
	sc.push()
	defer sc.pop()
	for _, p := range params {
		sc.declare(p.Name, p.Type)
	}
	var out []ast.Stmt
	for _, s := range b.Stmts {
		out = append(out, seStmt(sc, gen, s)...)
		sc.declareStmt(s)
	}
	b.Stmts = out
	return b
}

func seStmt(sc *scopes, gen *NameGen, s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// Keep "x = f(...);" as is (the normal form); normalize anything
		// else containing calls.
		if call, ok := s.RHS.(*ast.CallExpr); ok && !isBuiltinCallee(call) {
			pre := seCallArgs(sc, gen, call)
			return append(pre, s)
		}
		rhs, pre := seExpr(sc, gen, s.RHS)
		s.RHS = rhs
		return append(pre, s)
	case *ast.VarDeclStmt:
		if s.Init != nil {
			init, pre := seExpr(sc, gen, s.Init)
			s.Init = init
			sc.declareStmt(s)
			return append(pre, s)
		}
		sc.declareStmt(s)
		return []ast.Stmt{s}
	case *ast.ConstDeclStmt:
		sc.declareStmt(s)
		return []ast.Stmt{s}
	case *ast.IfStmt:
		cond, pre := seExpr(sc, gen, s.Cond)
		s.Cond = cond
		s.Then = seBlock(sc, gen, nil, s.Then)
		if s.Else != nil {
			repl := seStmt(sc, gen, s.Else)
			if len(repl) == 1 {
				s.Else = repl[0]
			} else {
				s.Else = &ast.BlockStmt{Stmts: repl}
			}
		}
		return append(pre, s)
	case *ast.BlockStmt:
		return []ast.Stmt{seBlock(sc, gen, nil, s)}
	case *ast.CallStmt:
		pre := seCallArgs(sc, gen, s.Call)
		return append(pre, s)
	case *ast.ReturnStmt:
		if s.Value != nil {
			v, pre := seExpr(sc, gen, s.Value)
			s.Value = v
			return append(pre, s)
		}
		return []ast.Stmt{s}
	case *ast.SwitchStmt:
		tag, pre := seExpr(sc, gen, s.Tag)
		s.Tag = tag
		for i := range s.Cases {
			s.Cases[i].Body = seBlock(sc, gen, nil, s.Cases[i].Body)
		}
		return append(pre, s)
	default:
		return []ast.Stmt{s}
	}
}

// seCallArgs hoists calls nested inside a call's arguments (the call
// itself stays in place).
func seCallArgs(sc *scopes, gen *NameGen, call *ast.CallExpr) []ast.Stmt {
	var pre []ast.Stmt
	for i, a := range call.Args {
		na, apre := seExpr(sc, gen, a)
		call.Args[i] = na
		pre = append(pre, apre...)
	}
	return pre
}

// seExpr rewrites an expression so it contains no user calls and no calls
// under short-circuit guards, returning the pure expression and the
// statements that must execute first.
func seExpr(sc *scopes, gen *NameGen, e ast.Expr) (ast.Expr, []ast.Stmt) {
	if !ast.ContainsCall(e) || onlyPureCalls(e) {
		return e, nil
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if isBuiltinCallee(e) {
			// isValid() — pure, but its receiver cannot contain calls in
			// our grammar; keep in place.
			return e, nil
		}
		pre := seCallArgs(sc, gen, e)
		rt := sc.typeOf(e)
		tmp := gen.Fresh("tmp")
		pre = append(pre, &ast.VarDeclStmt{Name: tmp, Type: ast.CloneType(rt), Init: e})
		sc.declare(tmp, rt)
		return ast.N(tmp), pre
	case *ast.UnaryExpr:
		x, pre := seExpr(sc, gen, e.X)
		e.X = x
		return e, pre
	case *ast.BinaryExpr:
		if e.Op.IsLogical() && ast.ContainsCall(e.Y) && !onlyPureCalls(e.Y) {
			// a && f(b) → bool tmp = a; if (tmp) { tmp = f(b); }
			// a || f(b) → bool tmp = a; if (!tmp) { tmp = f(b); }
			lhs, pre := seExpr(sc, gen, e.X)
			tmp := gen.Fresh("tmp")
			pre = append(pre, &ast.VarDeclStmt{Name: tmp, Type: &ast.BoolType{}, Init: lhs})
			sc.declare(tmp, &ast.BoolType{})
			rhs, rpre := seExpr(sc, gen, e.Y)
			body := append(rpre, ast.Assign(ast.N(tmp), rhs))
			var cond ast.Expr = ast.N(tmp)
			if e.Op == ast.OpLOr {
				cond = &ast.UnaryExpr{Op: ast.OpLNot, X: ast.N(tmp)}
			}
			pre = append(pre, ast.If(cond, ast.Block(body...), nil))
			return ast.N(tmp), pre
		}
		x, xpre := seExpr(sc, gen, e.X)
		y, ypre := seExpr(sc, gen, e.Y)
		e.X, e.Y = x, y
		return e, append(xpre, ypre...)
	case *ast.MuxExpr:
		// c ? f(x) : g(y) → T tmp; if (c) { tmp = f(x); } else { tmp = g(y); }
		if ast.ContainsCall(e.Then) && !onlyPureCalls(e.Then) ||
			ast.ContainsCall(e.Else) && !onlyPureCalls(e.Else) {
			cond, pre := seExpr(sc, gen, e.Cond)
			rt := sc.typeOf(e)
			tmp := gen.Fresh("tmp")
			pre = append(pre, &ast.VarDeclStmt{Name: tmp, Type: ast.CloneType(rt)})
			sc.declare(tmp, rt)
			tv, tpre := seExpr(sc, gen, e.Then)
			ev, epre := seExpr(sc, gen, e.Else)
			thenBody := append(tpre, ast.Assign(ast.N(tmp), tv))
			elseBody := append(epre, ast.Assign(ast.N(tmp), ev))
			pre = append(pre, ast.If(cond, ast.Block(thenBody...), ast.Block(elseBody...)))
			return ast.N(tmp), pre
		}
		c, cpre := seExpr(sc, gen, e.Cond)
		e.Cond = c
		return e, cpre
	case *ast.CastExpr:
		x, pre := seExpr(sc, gen, e.X)
		e.X = x
		return e, pre
	case *ast.MemberExpr:
		x, pre := seExpr(sc, gen, e.X)
		e.X = x
		return e, pre
	case *ast.SliceExpr:
		x, pre := seExpr(sc, gen, e.X)
		e.X = x
		return e, pre
	default:
		return e, nil
	}
}

// onlyPureCalls reports whether every call in the expression is a pure
// builtin (isValid), which needs no hoisting.
func onlyPureCalls(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(x ast.Expr) bool {
		if c, ok := x.(*ast.CallExpr); ok {
			m, isM := c.Func.(*ast.MemberExpr)
			if !isM || m.Member != "isValid" {
				pure = false
				return false
			}
		}
		return true
	})
	return pure
}
