package passes

import (
	"gauntlet/internal/p4/ast"
)

// CopyPropagation replaces reads of local variables with the variable or
// literal they were last assigned from, within straight-line regions of a
// block. Any call invalidates all facts (calls may write through inout
// arguments or mutate control state); branch joins invalidate everything
// the branches assign.
type CopyPropagation struct{}

// Name identifies the pass.
func (CopyPropagation) Name() string { return "CopyPropagation" }

// Run propagates copies in every executable body.
func (CopyPropagation) Run(prog *ast.Program) (*ast.Program, error) {
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					propagateBlock(l.Body, map[string]ast.Expr{})
				case *ast.FunctionDecl:
					propagateBlock(l.Body, map[string]ast.Expr{})
				}
			}
			propagateBlock(d.Apply, map[string]ast.Expr{})
		case *ast.FunctionDecl:
			propagateBlock(d.Body, map[string]ast.Expr{})
		case *ast.ActionDecl:
			propagateBlock(d.Body, map[string]ast.Expr{})
		}
	}
	return prog, nil
}

// copyable reports whether an expression may be propagated: identifiers
// and literals only.
func copyable(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.IntLit, *ast.BoolLit:
		return true
	}
	return false
}

// substitute rewrites identifier reads per the fact table.
func substitute(e ast.Expr, facts map[string]ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		if id, ok := x.(*ast.Ident); ok {
			if rep, ok := facts[id.Name]; ok {
				return ast.CloneExpr(rep)
			}
		}
		return x
	})
}

// substituteReads rewrites only the read positions of an lvalue: slice and
// member bases are reads of the same storage, so they are left alone.
func substituteLValue(e ast.Expr, facts map[string]ast.Expr) ast.Expr {
	// Lvalue roots must not be replaced (they name storage); nothing else
	// in an lvalue chain is substitutable in this subset.
	return e
}

// invalidate removes facts about name: both the fact keyed by it and any
// fact whose replacement reads it.
func invalidate(facts map[string]ast.Expr, name string) {
	delete(facts, name)
	for k, v := range facts {
		if id, ok := v.(*ast.Ident); ok && id.Name == name {
			delete(facts, k)
		}
	}
}

// assignedRoots collects the root identifiers written anywhere in a
// statement tree (assignments, call arguments, validity updates).
func assignedRoots(s ast.Stmt, into map[string]bool) {
	ast.InspectStmt(s, func(st ast.Stmt) bool {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if r := ast.RootIdent(st.LHS); r != nil {
				into[r.Name] = true
			}
		case *ast.CallStmt:
			// Conservatively treat every argument root and every name as
			// potentially written: table applies can touch control state.
			for _, a := range st.Call.Args {
				if r := ast.RootIdent(a); r != nil {
					into[r.Name] = true
				}
			}
			into["*"] = true
		case *ast.VarDeclStmt:
			into[st.Name] = true
		}
		return true
	}, func(e ast.Expr) bool {
		if c, ok := e.(*ast.CallExpr); ok {
			if m, isM := c.Func.(*ast.MemberExpr); isM && m.Member != "isValid" {
				into["*"] = true
			}
		}
		return true
	})
}

func propagateBlock(b *ast.BlockStmt, facts map[string]ast.Expr) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		propagateStmt(s, facts)
	}
}

func propagateStmt(s ast.Stmt, facts map[string]ast.Expr) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		s.RHS = substitute(s.RHS, facts)
		s.LHS = substituteLValue(s.LHS, facts)
		root := ast.RootIdent(s.LHS)
		if root == nil {
			return
		}
		if id, whole := s.LHS.(*ast.Ident); whole {
			invalidate(facts, id.Name)
			if copyable(s.RHS) {
				// x = y / x = 3: record the fact, unless self-copy.
				if rid, ok := s.RHS.(*ast.Ident); !ok || rid.Name != id.Name {
					facts[id.Name] = s.RHS
				}
			}
		} else {
			// Partial write (member/slice): kill facts about the root.
			invalidate(facts, root.Name)
		}
	case *ast.VarDeclStmt:
		if s.Init != nil {
			s.Init = substitute(s.Init, facts)
			invalidate(facts, s.Name)
			if copyable(s.Init) {
				facts[s.Name] = s.Init
			}
		} else {
			invalidate(facts, s.Name)
		}
	case *ast.ConstDeclStmt:
		s.Value = substitute(s.Value, facts)
		invalidate(facts, s.Name)
		if copyable(s.Value) {
			facts[s.Name] = s.Value
		}
	case *ast.IfStmt:
		s.Cond = substitute(s.Cond, facts)
		thenFacts := cloneFacts(facts)
		propagateBlock(s.Then, thenFacts)
		if s.Else != nil {
			elseFacts := cloneFacts(facts)
			propagateStmt(s.Else, elseFacts)
		}
		// Join: drop facts about anything either branch writes.
		killed := map[string]bool{}
		assignedRoots(s, killed)
		applyKills(facts, killed)
	case *ast.BlockStmt:
		propagateBlock(s, facts)
	case *ast.CallStmt:
		for i, a := range s.Call.Args {
			// Lvalue arguments may be out/inout destinations; leave them.
			if !ast.IsLValue(a) {
				s.Call.Args[i] = substitute(a, facts)
			}
		}
		// Calls may write anything reachable; drop all facts.
		for k := range facts {
			delete(facts, k)
		}
	case *ast.ReturnStmt:
		s.Value = substitute(s.Value, facts)
	case *ast.SwitchStmt:
		s.Tag = substitute(s.Tag, facts)
		for i := range s.Cases {
			caseFacts := cloneFacts(facts)
			propagateBlock(s.Cases[i].Body, caseFacts)
		}
		killed := map[string]bool{}
		assignedRoots(s, killed)
		applyKills(facts, killed)
	}
}

func cloneFacts(f map[string]ast.Expr) map[string]ast.Expr {
	c := make(map[string]ast.Expr, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func applyKills(facts map[string]ast.Expr, killed map[string]bool) {
	if killed["*"] {
		for k := range facts {
			delete(facts, k)
		}
		return
	}
	for name := range killed {
		invalidate(facts, name)
	}
}
