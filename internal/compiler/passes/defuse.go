package passes

import (
	"gauntlet/internal/p4/ast"
)

// SimplifyDefUse removes stores to local variables that are never read
// afterwards, and declarations that are never read at all (P4C's
// SimplifyDefUse pass). Only locals declared inside the body being
// cleaned are candidates; parameters and control-scope names are always
// observable (copy-out, later table applies).
//
// The paper's Figure 5a bug lived here: the pass wrongly removed variables
// in the caller scope because a return statement confused its liveness
// tracking. The reference implementation below treats return/exit as
// making all observable state live.
type SimplifyDefUse struct{}

// Name identifies the pass.
func (SimplifyDefUse) Name() string { return "SimplifyDefUse" }

// Run cleans every executable body in the program.
func (SimplifyDefUse) Run(prog *ast.Program) (*ast.Program, error) {
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					cleanBody(l.Body)
				case *ast.FunctionDecl:
					cleanBody(l.Body)
				}
			}
			cleanBody(d.Apply)
		case *ast.FunctionDecl:
			cleanBody(d.Body)
		case *ast.ActionDecl:
			cleanBody(d.Body)
		}
	}
	return prog, nil
}

// cleanBody performs backwards liveness over one body. Everything not
// declared inside the body is treated as live at exit.
func cleanBody(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	locals := map[string]bool{}
	collectLocals(b, locals)
	// Iterate to a local fixed point: removing one dead store can make an
	// earlier one dead.
	for i := 0; i < 8; i++ {
		if !sweepBlock(b, map[string]bool{}, locals) {
			break
		}
	}
}

func collectLocals(s ast.Stmt, into map[string]bool) {
	ast.InspectStmt(s, func(st ast.Stmt) bool {
		if d, ok := st.(*ast.VarDeclStmt); ok {
			into[d.Name] = true
		}
		return true
	}, nil)
}

// reads collects the identifiers read by an expression.
func reads(e ast.Expr, into map[string]bool) {
	if e != nil {
		ast.FreeIdents(e, into)
	}
}

// sweepBlock walks the block backwards, removing dead stores. live is
// mutated to the block's live-in set. Returns true if anything changed.
//
// Conservative rules: any call makes everything live (its callee can read
// control state); exit/return make everything live (copy-out and
// observable control state); names not in locals are always live.
func sweepBlock(b *ast.BlockStmt, live map[string]bool, locals map[string]bool) bool {
	changed := false
	var kept []ast.Stmt
	// mentionedAfter tracks every identifier occurring in statements kept
	// so far (i.e. after the current one): a declaration can only be
	// dropped when nothing later still names the variable, even as a
	// dead-looking store target.
	mentionedAfter := map[string]bool{}
	keep := func(s ast.Stmt) {
		kept = append(kept, s)
		ast.InspectStmt(s, func(st ast.Stmt) bool { return true }, func(e ast.Expr) bool {
			if id, ok := e.(*ast.Ident); ok {
				mentionedAfter[id.Name] = true
			}
			return true
		})
	}
	isLive := func(name string) bool {
		return !locals[name] || live[name] || live["*"]
	}
	for i := len(b.Stmts) - 1; i >= 0; i-- {
		s := b.Stmts[i]
		switch s := s.(type) {
		case *ast.AssignStmt:
			root := ast.RootIdent(s.LHS)
			if id, whole := s.LHS.(*ast.Ident); whole && !isLive(id.Name) && !ast.ContainsCall(s.RHS) {
				changed = true
				continue // dead store
			}
			if root != nil {
				if _, whole := s.LHS.(*ast.Ident); whole {
					delete(live, root.Name)
				} else {
					// Partial write: the old value flows through.
					live[root.Name] = true
				}
			}
			reads(s.RHS, live)
			// Slice bounds and member paths read the root too, but
			// FreeIdents on the LHS would mark a whole-var def as a
			// read; only scan non-ident LHS.
			if _, whole := s.LHS.(*ast.Ident); !whole {
				reads(s.LHS, live)
			}
		case *ast.VarDeclStmt:
			if !isLive(s.Name) && !mentionedAfter[s.Name] &&
				(s.Init == nil || !ast.ContainsCall(s.Init)) {
				changed = true
				continue // dead declaration
			}
			delete(live, s.Name)
			reads(s.Init, live)
		case *ast.ConstDeclStmt:
			if !isLive(s.Name) && !mentionedAfter[s.Name] {
				changed = true
				continue
			}
			delete(live, s.Name)
			reads(s.Value, live)
		case *ast.IfStmt:
			thenLive := cloneSet(live)
			if sweepBlock(s.Then, thenLive, locals) {
				changed = true
			}
			elseLive := cloneSet(live)
			if s.Else != nil {
				wrapper := &ast.BlockStmt{Stmts: []ast.Stmt{s.Else}}
				if sweepBlock(wrapper, elseLive, locals) {
					changed = true
				}
				switch len(wrapper.Stmts) {
				case 0:
					s.Else = nil
				case 1:
					s.Else = wrapper.Stmts[0]
				default:
					s.Else = wrapper
				}
			}
			union(live, thenLive)
			union(live, elseLive)
			reads(s.Cond, live)
		case *ast.BlockStmt:
			if sweepBlock(s, live, locals) {
				changed = true
			}
		case *ast.CallStmt:
			live["*"] = true
			for _, a := range s.Call.Args {
				reads(a, live)
			}
		case *ast.ReturnStmt:
			// A return ends the body here: downstream liveness (already
			// accumulated in live) is irrelevant, but everything
			// observable (non-locals, copy-out) is live. Model as all
			// live to stay conservative — this is exactly the spot the
			// Fig. 5a defect gets wrong.
			live["*"] = true
			reads(s.Value, live)
		case *ast.ExitStmt:
			live["*"] = true
		case *ast.EmptyStmt:
			changed = true
			continue // drop empty statements
		case *ast.SwitchStmt:
			merged := cloneSet(live)
			for j := range s.Cases {
				caseLive := cloneSet(live)
				if sweepBlock(s.Cases[j].Body, caseLive, locals) {
					changed = true
				}
				union(merged, caseLive)
			}
			for k := range merged {
				live[k] = true
			}
			for j := range s.Cases {
				for _, l := range s.Cases[j].Labels {
					reads(l, live)
				}
			}
			reads(s.Tag, live)
		}
		keep(s)
	}
	// kept is in reverse order.
	for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
		kept[l], kept[r] = kept[r], kept[l]
	}
	b.Stmts = kept
	return changed
}

func cloneSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func union(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}
