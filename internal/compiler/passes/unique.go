package passes

import (
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/types"
)

// TypeChecking re-runs the type checker as a pass, mirroring P4C's
// repeated checking between transformations. Most of the paper's crash
// bugs were assertion violations in this infrastructure (§7.2: 18 of 25
// P4C crashes were in the type checker).
type TypeChecking struct{}

// Name identifies the pass.
func (TypeChecking) Name() string { return "TypeChecking" }

// Run type-checks the program and passes it through unchanged.
func (TypeChecking) Run(prog *ast.Program) (*ast.Program, error) {
	if err := types.Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// UniqueNames alpha-renames declarations so every declared name is unique
// within its control — no shadowing, no sibling-scope reuse. Later passes
// (inlining, predication) can then substitute names and flatten scopes
// without capture. Control-plane-visible names (directionless action
// parameters, tables, actions) are preserved, as P4C does via @name
// annotations.
type UniqueNames struct{}

// Name identifies the pass.
func (UniqueNames) Name() string { return "UniqueNames" }

// Run renames colliding declarations.
func (UniqueNames) Run(prog *ast.Program) (*ast.Program, error) {
	gen := NewNameGen(prog)
	for _, d := range prog.Decls {
		ctrl, ok := d.(*ast.ControlDecl)
		if !ok {
			continue
		}
		declared := map[string]bool{}
		for _, p := range ctrl.Params {
			declared[p.Name] = true
		}
		for _, l := range ctrl.Locals {
			declared[l.DeclName()] = true
		}
		for _, l := range ctrl.Locals {
			switch l := l.(type) {
			case *ast.ActionDecl:
				renameCallable(gen, l.Params, l.Body, declared, false)
			case *ast.FunctionDecl:
				renameCallable(gen, l.Params, l.Body, declared, true)
			}
		}
		uniquifyBlock(gen, ctrl.Apply, declared)
	}
	return prog, nil
}

// renameCallable uniquifies parameters and body declarations of an action
// or function against the control-wide declared set. Directionless action
// parameters keep their names: they are control-plane visible.
func renameCallable(gen *NameGen, params []ast.Param, body *ast.BlockStmt,
	declared map[string]bool, renameAll bool) {
	ren := map[string]string{}
	for i := range params {
		p := &params[i]
		cpVisible := p.Dir == ast.DirNone && !renameAll
		if declared[p.Name] && !cpVisible {
			nn := gen.Fresh(p.Name)
			ren[p.Name] = nn
			p.Name = nn
		}
		declared[p.Name] = true
	}
	if len(ren) > 0 {
		substituteIdents(body, ren)
	}
	uniquifyBlock(gen, body, declared)
}

// uniquifyBlock renames declarations whose name was already declared
// anywhere in the control; renames apply to the remainder of the block
// (inner scopes see the new name through substitution order).
func uniquifyBlock(gen *NameGen, b *ast.BlockStmt, declared map[string]bool) {
	if b == nil {
		return
	}
	for i := 0; i < len(b.Stmts); i++ {
		switch s := b.Stmts[i].(type) {
		case *ast.VarDeclStmt:
			renameIfNeeded(gen, &s.Name, declared, b.Stmts[i+1:])
		case *ast.ConstDeclStmt:
			renameIfNeeded(gen, &s.Name, declared, b.Stmts[i+1:])
		case *ast.IfStmt:
			uniquifyBlock(gen, s.Then, declared)
			switch els := s.Else.(type) {
			case *ast.BlockStmt:
				uniquifyBlock(gen, els, declared)
			case *ast.IfStmt:
				uniquifyBlock(gen, &ast.BlockStmt{Stmts: []ast.Stmt{els}}, declared)
			}
		case *ast.BlockStmt:
			uniquifyBlock(gen, s, declared)
		case *ast.SwitchStmt:
			for j := range s.Cases {
				uniquifyBlock(gen, s.Cases[j].Body, declared)
			}
		}
	}
}

func renameIfNeeded(gen *NameGen, name *string, declared map[string]bool, rest []ast.Stmt) {
	if declared[*name] {
		nn := gen.Fresh(*name)
		substituteScoped(rest, *name, nn)
		*name = nn
	}
	declared[*name] = true
}

// substituteScoped renames free occurrences of old to nn in a statement
// sequence, stopping (within the remaining sequence) at a redeclaration of
// old, whose scope rebinds the name.
func substituteScoped(stmts []ast.Stmt, old, nn string) {
	renExpr := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(x ast.Expr) bool {
			if id, ok := x.(*ast.Ident); ok && id.Name == old {
				id.Name = nn
			}
			return true
		})
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.VarDeclStmt:
			renExpr(s.Init)
			if s.Name == old {
				return // rest of this block binds to the redeclaration
			}
		case *ast.ConstDeclStmt:
			renExpr(s.Value)
			if s.Name == old {
				return
			}
		case *ast.AssignStmt:
			renExpr(s.LHS)
			renExpr(s.RHS)
		case *ast.IfStmt:
			renExpr(s.Cond)
			substituteScoped(s.Then.Stmts, old, nn)
			if s.Else != nil {
				substituteScoped([]ast.Stmt{s.Else}, old, nn)
			}
		case *ast.BlockStmt:
			substituteScoped(s.Stmts, old, nn)
		case *ast.CallStmt:
			renExpr(s.Call)
		case *ast.ReturnStmt:
			renExpr(s.Value)
		case *ast.SwitchStmt:
			renExpr(s.Tag)
			for i := range s.Cases {
				for _, l := range s.Cases[i].Labels {
					renExpr(l)
				}
				substituteScoped(s.Cases[i].Body.Stmts, old, nn)
			}
		}
	}
}
