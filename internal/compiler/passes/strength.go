package passes

import (
	"math/bits"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
)

// StrengthReduction replaces expensive operations with cheaper equivalents
// (P4C's StrengthReduction pass): multiplications by powers of two become
// shifts, identity operations disappear, and annihilating operands
// collapse. All operands are effect-free after SideEffectOrdering, so
// dropping one is safe.
//
// The paper's Figure 5c bug lived here: a missing safety check made the
// pass compute a negative slice index, which the type checker then
// rejected. The reference implementation below carries the check; the bug
// registry removes it.
type StrengthReduction struct{}

// Name identifies the pass.
func (StrengthReduction) Name() string { return "StrengthReduction" }

// Run reduces every executable body.
func (StrengthReduction) Run(prog *ast.Program) (*ast.Program, error) {
	fold := func(e ast.Expr) ast.Expr { return ReduceExpr(e) }
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			ast.RewriteControl(d, nil, fold)
		case *ast.FunctionDecl:
			d.Body = ast.RewriteBlock(d.Body, nil, fold)
		case *ast.ActionDecl:
			d.Body = ast.RewriteBlock(d.Body, nil, fold)
		}
	}
	return prog, nil
}

func sameLValue(a, b ast.Expr) bool {
	if !ast.IsLValue(a) || !ast.IsLValue(b) {
		return false
	}
	return printer.PrintExpr(a) == printer.PrintExpr(b)
}

func isZero(e ast.Expr) (int, bool) {
	if l, ok := e.(*ast.IntLit); ok && l.Val == 0 {
		return l.Width, true
	}
	return 0, false
}

func isAllOnes(e ast.Expr) bool {
	l, ok := e.(*ast.IntLit)
	return ok && l.Width > 0 && l.Val == ast.MaskWidth(^uint64(0), l.Width)
}

func isPowerOfTwo(e ast.Expr) (int, bool) {
	l, ok := e.(*ast.IntLit)
	if !ok || l.Val == 0 || l.Val&(l.Val-1) != 0 {
		return 0, false
	}
	return bits.TrailingZeros64(l.Val), true
}

// widthOfLit returns the width of an integer-literal expression.
func widthOfLit(e ast.Expr) int {
	if l, ok := e.(*ast.IntLit); ok {
		return l.Width
	}
	return 0
}

// ReduceExpr applies one strength-reduction rewrite to a node whose
// children are already reduced. Exported for the bug registry's mutated
// variants.
func ReduceExpr(e ast.Expr) ast.Expr {
	b, ok := e.(*ast.BinaryExpr)
	if !ok {
		if sl, ok := e.(*ast.SliceExpr); ok {
			// Full-width slice of a sliced value: x[hi:0] over width hi+1
			// is the identity — but only when the slice covers the whole
			// operand, which needs the operand's width; handled only for
			// nested slices where widths are syntactically known.
			if inner, ok := sl.X.(*ast.SliceExpr); ok {
				// x[a:b][c:d] == x[b+c : b+d] shifted: fold the double
				// slice. The safety check c >= d >= 0 is structural; the
				// resulting bounds must stay within the inner slice.
				hi := inner.Lo + sl.Hi
				lo := inner.Lo + sl.Lo
				if lo >= 0 && hi <= inner.Hi { // safety check (Fig. 5c class)
					return &ast.SliceExpr{X: inner.X, Hi: hi, Lo: lo}
				}
			}
		}
		return e
	}
	switch b.Op {
	case ast.OpMul:
		if _, z := isZero(b.X); z {
			return ast.Num(widthOfLit(b.X), 0)
		}
		if w, z := isZero(b.Y); z {
			_ = w
			return zeroLike(b.X, b.Y)
		}
		if sh, ok := isPowerOfTwo(b.Y); ok {
			if sh == 0 {
				return b.X // * 1
			}
			return ast.Bin(ast.OpShl, b.X, &ast.IntLit{Width: 32, Val: uint64(sh)})
		}
		if sh, ok := isPowerOfTwo(b.X); ok {
			if sh == 0 {
				return b.Y
			}
			return ast.Bin(ast.OpShl, b.Y, &ast.IntLit{Width: 32, Val: uint64(sh)})
		}
	case ast.OpAdd:
		if _, z := isZero(b.Y); z {
			return b.X
		}
		if _, z := isZero(b.X); z {
			return b.Y
		}
	case ast.OpSub:
		if _, z := isZero(b.Y); z {
			return b.X
		}
		if sameLValue(b.X, b.Y) {
			return zeroLike(b.X, b.Y)
		}
	case ast.OpBitAnd:
		if _, z := isZero(b.X); z {
			return zeroLike(b.Y, b.X)
		}
		if _, z := isZero(b.Y); z {
			return zeroLike(b.X, b.Y)
		}
		if isAllOnes(b.Y) {
			return b.X
		}
		if isAllOnes(b.X) {
			return b.Y
		}
		if sameLValue(b.X, b.Y) {
			return b.X
		}
	case ast.OpBitOr:
		if _, z := isZero(b.Y); z {
			return b.X
		}
		if _, z := isZero(b.X); z {
			return b.Y
		}
		if sameLValue(b.X, b.Y) {
			return b.X
		}
	case ast.OpBitXor:
		if _, z := isZero(b.Y); z {
			return b.X
		}
		if _, z := isZero(b.X); z {
			return b.Y
		}
		if sameLValue(b.X, b.Y) {
			return zeroLike(b.X, b.Y)
		}
	case ast.OpShl, ast.OpShr:
		if l, ok := b.Y.(*ast.IntLit); ok {
			if l.Val == 0 {
				return b.X
			}
		}
	}
	return e
}

// zeroLike builds a zero literal of the same width as x (falling back to
// the width of the literal operand l when x's width is not syntactically
// evident).
func zeroLike(x, l ast.Expr) ast.Expr {
	if il, ok := x.(*ast.IntLit); ok {
		return ast.Num(il.Width, 0)
	}
	if sl, ok := x.(*ast.SliceExpr); ok {
		return ast.Num(sl.Hi-sl.Lo+1, 0)
	}
	if il, ok := l.(*ast.IntLit); ok && il.Width > 0 {
		return ast.Num(il.Width, 0)
	}
	// Width unknown syntactically: keep the expression shape instead of
	// guessing (x ^ x has the right value and width).
	return ast.Bin(ast.OpBitXor, x, ast.CloneExpr(x))
}
