package passes

import (
	"gauntlet/internal/p4/ast"
)

// ConstantFolding evaluates constant subexpressions and prunes branches
// with constant conditions (P4C's ConstantFolding pass).
type ConstantFolding struct{}

// Name identifies the pass.
func (ConstantFolding) Name() string { return "ConstantFolding" }

// Run folds constants in every executable body.
func (ConstantFolding) Run(prog *ast.Program) (*ast.Program, error) {
	fold := func(e ast.Expr) ast.Expr { return FoldExpr(e) }
	simplify := func(s ast.Stmt) []ast.Stmt {
		if iff, ok := s.(*ast.IfStmt); ok {
			if b, ok := iff.Cond.(*ast.BoolLit); ok {
				if b.Val {
					return []ast.Stmt{iff.Then}
				}
				if iff.Else != nil {
					return []ast.Stmt{iff.Else}
				}
				return nil
			}
		}
		return []ast.Stmt{s}
	}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			ast.RewriteControl(d, simplify, fold)
		case *ast.FunctionDecl:
			d.Body = ast.RewriteBlock(d.Body, simplify, fold)
		case *ast.ActionDecl:
			d.Body = ast.RewriteBlock(d.Body, simplify, fold)
		case *ast.ParserDecl:
			for i := range d.States {
				var out []ast.Stmt
				for _, s := range d.States[i].Stmts {
					out = append(out, ast.RewriteStmt(s, simplify, fold)...)
				}
				d.States[i].Stmts = out
				if sel, ok := d.States[i].Trans.(*ast.TransSelect); ok {
					sel.Expr = ast.RewriteExpr(sel.Expr, fold)
				}
			}
		}
	}
	return prog, nil
}

// FoldExpr folds a single expression node whose children are already
// folded. Exported for reuse by StrengthReduction and the bug registry.
func FoldExpr(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		switch x := e.X.(type) {
		case *ast.IntLit:
			switch e.Op {
			case ast.OpNeg:
				return ast.Num(x.Width, ^x.Val+1)
			case ast.OpBitNot:
				return ast.Num(x.Width, ^x.Val)
			}
		case *ast.BoolLit:
			if e.Op == ast.OpLNot {
				return ast.Bool(!x.Val)
			}
		}
	case *ast.BinaryExpr:
		xl, xok := e.X.(*ast.IntLit)
		yl, yok := e.Y.(*ast.IntLit)
		if xok && yok && xl.Width > 0 && (yl.Width > 0 || e.Op == ast.OpShl || e.Op == ast.OpShr) {
			if v, ok := foldIntBinary(e.Op, xl, yl); ok {
				return v
			}
		}
		xb, xbok := e.X.(*ast.BoolLit)
		yb, ybok := e.Y.(*ast.BoolLit)
		if xbok && ybok {
			switch e.Op {
			case ast.OpLAnd:
				return ast.Bool(xb.Val && yb.Val)
			case ast.OpLOr:
				return ast.Bool(xb.Val || yb.Val)
			case ast.OpEq:
				return ast.Bool(xb.Val == yb.Val)
			case ast.OpNe:
				return ast.Bool(xb.Val != yb.Val)
			}
		}
		// Short-circuit folding with one constant operand: X is
		// effect-free after SideEffectOrdering, so dropping it is safe.
		if xbok {
			if e.Op == ast.OpLAnd {
				if xb.Val {
					return e.Y
				}
				return ast.Bool(false)
			}
			if e.Op == ast.OpLOr {
				if xb.Val {
					return ast.Bool(true)
				}
				return e.Y
			}
		}
		if ybok {
			if e.Op == ast.OpLAnd && yb.Val {
				return e.X
			}
			if e.Op == ast.OpLOr && !yb.Val {
				return e.X
			}
		}
	case *ast.MuxExpr:
		if c, ok := e.Cond.(*ast.BoolLit); ok {
			if c.Val {
				return e.Then
			}
			return e.Else
		}
	case *ast.CastExpr:
		switch to := e.To.(type) {
		case *ast.BitType:
			if x, ok := e.X.(*ast.IntLit); ok {
				return ast.Num(to.Width, x.Val)
			}
			if x, ok := e.X.(*ast.BoolLit); ok {
				if x.Val {
					return ast.Num(to.Width, 1)
				}
				return ast.Num(to.Width, 0)
			}
		case *ast.BoolType:
			if x, ok := e.X.(*ast.IntLit); ok && x.Width == 1 {
				return ast.Bool(x.Val == 1)
			}
		}
	case *ast.SliceExpr:
		if x, ok := e.X.(*ast.IntLit); ok {
			return ast.Num(e.Hi-e.Lo+1, x.Val>>uint(e.Lo))
		}
	}
	return e
}

func foldIntBinary(op ast.BinaryOp, x, y *ast.IntLit) (ast.Expr, bool) {
	w := x.Width
	switch op {
	case ast.OpAdd:
		return ast.Num(w, x.Val+y.Val), true
	case ast.OpSub:
		return ast.Num(w, x.Val-y.Val), true
	case ast.OpMul:
		return ast.Num(w, x.Val*y.Val), true
	case ast.OpSatAdd:
		s := ast.MaskWidth(x.Val+y.Val, w)
		if s < x.Val || (w < 64 && x.Val+y.Val >= 1<<uint(w)) {
			return ast.Num(w, ^uint64(0)), true
		}
		return ast.Num(w, s), true
	case ast.OpSatSub:
		if x.Val < y.Val {
			return ast.Num(w, 0), true
		}
		return ast.Num(w, x.Val-y.Val), true
	case ast.OpBitAnd:
		return ast.Num(w, x.Val&y.Val), true
	case ast.OpBitOr:
		return ast.Num(w, x.Val|y.Val), true
	case ast.OpBitXor:
		return ast.Num(w, x.Val^y.Val), true
	case ast.OpShl:
		if y.Val >= uint64(w) {
			return ast.Num(w, 0), true
		}
		return ast.Num(w, x.Val<<y.Val), true
	case ast.OpShr:
		if y.Val >= uint64(w) {
			return ast.Num(w, 0), true
		}
		return ast.Num(w, x.Val>>y.Val), true
	case ast.OpEq:
		return ast.Bool(x.Val == y.Val), true
	case ast.OpNe:
		return ast.Bool(x.Val != y.Val), true
	case ast.OpLt:
		return ast.Bool(x.Val < y.Val), true
	case ast.OpLe:
		return ast.Bool(x.Val <= y.Val), true
	case ast.OpGt:
		return ast.Bool(x.Val > y.Val), true
	case ast.OpGe:
		return ast.Bool(x.Val >= y.Val), true
	case ast.OpConcat:
		return ast.Num(x.Width+y.Width, x.Val<<uint(y.Width)|y.Val), true
	}
	return nil, false
}
