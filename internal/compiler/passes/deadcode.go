package passes

import (
	"gauntlet/internal/p4/ast"
)

// DeadCode removes unreachable statements (anything following an
// unconditional return or exit in a block), empty blocks, and if
// statements with two empty branches and effect-free conditions.
type DeadCode struct{}

// Name identifies the pass.
func (DeadCode) Name() string { return "DeadCode" }

// Run prunes every executable body.
func (DeadCode) Run(prog *ast.Program) (*ast.Program, error) {
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					pruneBlock(l.Body)
				case *ast.FunctionDecl:
					pruneBlock(l.Body)
				}
			}
			pruneBlock(d.Apply)
		case *ast.FunctionDecl:
			pruneBlock(d.Body)
		case *ast.ActionDecl:
			pruneBlock(d.Body)
		}
	}
	return prog, nil
}

// terminal reports whether the statement unconditionally leaves the
// enclosing body.
func terminal(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.ExitStmt:
		return true
	case *ast.BlockStmt:
		for _, st := range s.Stmts {
			if terminal(st) {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return blockTerminal(s.Then) && terminal(s.Else)
	default:
		return false
	}
}

func blockTerminal(b *ast.BlockStmt) bool {
	for _, st := range b.Stmts {
		if terminal(st) {
			return true
		}
	}
	return false
}

func pruneBlock(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	var out []ast.Stmt
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.EmptyStmt:
			continue
		case *ast.BlockStmt:
			pruneBlock(s)
			if len(s.Stmts) == 0 {
				continue
			}
			out = append(out, s)
		case *ast.IfStmt:
			pruneBlock(s.Then)
			if els, ok := s.Else.(*ast.BlockStmt); ok {
				pruneBlock(els)
				if len(els.Stmts) == 0 {
					s.Else = nil
				}
			} else if els, ok := s.Else.(*ast.IfStmt); ok {
				wrapper := &ast.BlockStmt{Stmts: []ast.Stmt{els}}
				pruneBlock(wrapper)
				switch len(wrapper.Stmts) {
				case 0:
					s.Else = nil
				case 1:
					s.Else = wrapper.Stmts[0]
				default:
					s.Else = wrapper
				}
			}
			if len(s.Then.Stmts) == 0 && s.Else == nil && !ast.ContainsCall(s.Cond) {
				continue // effect-free empty if
			}
			// Normalize "if (c) { } else { S }" to "if (!c) { S }".
			if len(s.Then.Stmts) == 0 && s.Else != nil {
				s.Cond = &ast.UnaryExpr{Op: ast.OpLNot, X: s.Cond}
				switch els := s.Else.(type) {
				case *ast.BlockStmt:
					s.Then = els
				default:
					s.Then = &ast.BlockStmt{Stmts: []ast.Stmt{els}}
				}
				s.Else = nil
			}
			out = append(out, s)
		case *ast.SwitchStmt:
			for i := range s.Cases {
				pruneBlock(s.Cases[i].Body)
			}
			out = append(out, s)
		default:
			out = append(out, s)
		}
		// Unreachable code after a terminal statement.
		if len(out) > 0 && terminal(out[len(out)-1]) {
			break
		}
	}
	b.Stmts = out
}
