package passes

import (
	"fmt"

	"gauntlet/internal/p4/ast"
)

// inliner expands calls to a class of callables into their bodies with
// explicit copy-in/copy-out, replacing returns and exits with guard
// variables. It implements the semantics the paper's Figure 5f dispute
// settled: an exit inside a callee still performs copy-out before
// terminating the control.
type inliner struct {
	prog *ast.Program
	ctrl *ast.ControlDecl
	gen  *NameGen
	// selects the callables this pass expands.
	selectDecl func(name string) (params []ast.Param, ret ast.Type, body *ast.BlockStmt, ok bool)
	changed    bool
}

// InlineFunctions expands every function call (P4C's InlineFunctions
// pass). SideEffectOrdering must run first so calls appear only as call
// statements or assignment right-hand sides; a call found anywhere else
// violates the pipeline contract and aborts the pass — the "snowball
// effect" (§7.2) where a missed earlier transformation crashes a later
// pass.
type InlineFunctions struct{}

// Name identifies the pass.
func (InlineFunctions) Name() string { return "InlineFunctions" }

// Run expands function calls to a fixed point.
func (InlineFunctions) Run(prog *ast.Program) (*ast.Program, error) {
	return runInliner(prog, func(in *inliner) {
		in.selectDecl = func(name string) ([]ast.Param, ast.Type, *ast.BlockStmt, bool) {
			if in.ctrl != nil {
				if f, ok := in.ctrl.LocalByName(name).(*ast.FunctionDecl); ok {
					return f.Params, f.Return, f.Body, true
				}
			}
			if f, ok := in.prog.DeclByName(name).(*ast.FunctionDecl); ok {
				return f.Params, f.Return, f.Body, true
			}
			return nil, nil, nil, false
		}
	})
}

// RemoveActionParameters expands direct (non-table) action calls, so the
// only remaining action invocations are through tables (P4C's
// RemoveActionParameters + LocalizeActions combination).
type RemoveActionParameters struct{}

// Name identifies the pass.
func (RemoveActionParameters) Name() string { return "RemoveActionParameters" }

// Run expands direct action calls to a fixed point.
func (RemoveActionParameters) Run(prog *ast.Program) (*ast.Program, error) {
	return runInliner(prog, func(in *inliner) {
		in.selectDecl = func(name string) ([]ast.Param, ast.Type, *ast.BlockStmt, bool) {
			if in.ctrl != nil {
				if a, ok := in.ctrl.LocalByName(name).(*ast.ActionDecl); ok {
					return a.Params, nil, a.Body, true
				}
			}
			if a, ok := in.prog.DeclByName(name).(*ast.ActionDecl); ok {
				return a.Params, nil, a.Body, true
			}
			return nil, nil, nil, false
		}
	})
}

func runInliner(prog *ast.Program, setup func(*inliner)) (*ast.Program, error) {
	for round := 0; ; round++ {
		if round > 50 {
			return nil, fmt.Errorf("inliner did not reach a fixed point (recursive calls?)")
		}
		in := &inliner{prog: prog, gen: NewNameGen(prog)}
		setup(in)
		for _, d := range prog.Decls {
			switch d := d.(type) {
			case *ast.ControlDecl:
				in.ctrl = d
				for _, l := range d.Locals {
					switch l := l.(type) {
					case *ast.ActionDecl:
						l.Body = in.block(l.Body)
					case *ast.FunctionDecl:
						l.Body = in.block(l.Body)
					}
				}
				d.Apply = in.block(d.Apply)
				in.ctrl = nil
			case *ast.FunctionDecl:
				d.Body = in.block(d.Body)
			case *ast.ActionDecl:
				d.Body = in.block(d.Body)
			}
		}
		if !in.changed {
			return prog, nil
		}
	}
}

func (in *inliner) block(b *ast.BlockStmt) *ast.BlockStmt {
	if b == nil {
		return nil
	}
	var out []ast.Stmt
	for _, s := range b.Stmts {
		out = append(out, in.stmt(s)...)
	}
	b.Stmts = out
	return b
}

func (in *inliner) stmt(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.CallStmt:
		if name := calleeName(s.Call); name != "" {
			if params, _, body, ok := in.selectDecl(name); ok {
				return in.expand(params, nil, body, s.Call.Args, nil)
			}
		}
		return []ast.Stmt{s}
	case *ast.AssignStmt:
		if call, ok := s.RHS.(*ast.CallExpr); ok {
			if name := calleeName(call); name != "" {
				if params, ret, body, ok := in.selectDecl(name); ok {
					return in.expand(params, ret, body, call.Args, s.LHS)
				}
			}
		}
		return []ast.Stmt{s}
	case *ast.VarDeclStmt:
		// SideEffectOrdering hoists calls into initialized declarations:
		// split "T t = f(x);" into "T t; t = f(x);" and expand.
		if call, ok := s.Init.(*ast.CallExpr); ok {
			if name := calleeName(call); name != "" {
				if params, ret, body, ok := in.selectDecl(name); ok {
					decl := &ast.VarDeclStmt{DeclPos: s.DeclPos, Name: s.Name, Type: s.Type}
					out := []ast.Stmt{decl}
					out = append(out, in.expand(params, ret, body, call.Args, ast.N(s.Name))...)
					return out
				}
			}
		}
		return []ast.Stmt{s}
	case *ast.IfStmt:
		s.Then = in.block(s.Then)
		if s.Else != nil {
			repl := in.stmt(s.Else)
			if len(repl) == 1 {
				s.Else = repl[0]
			} else {
				s.Else = &ast.BlockStmt{Stmts: repl}
			}
		}
		return []ast.Stmt{s}
	case *ast.BlockStmt:
		return []ast.Stmt{in.block(s)}
	case *ast.SwitchStmt:
		for i := range s.Cases {
			s.Cases[i].Body = in.block(s.Cases[i].Body)
		}
		return []ast.Stmt{s}
	default:
		return []ast.Stmt{s}
	}
}

// expand inlines one call. params/ret/body describe the callee; args are
// the call arguments; resultLV (may be nil) receives the return value.
func (in *inliner) expand(params []ast.Param, ret ast.Type, body *ast.BlockStmt,
	args []ast.Expr, resultLV ast.Expr) []ast.Stmt {
	in.changed = true
	var out []ast.Stmt

	// Copy-in: one temporary per parameter, left to right.
	ren := map[string]string{}
	tmpNames := make([]string, len(params))
	for i, p := range params {
		tmp := in.gen.Fresh("tmp_" + p.Name)
		tmpNames[i] = tmp
		ren[p.Name] = tmp
		decl := &ast.VarDeclStmt{Name: tmp, Type: ast.CloneType(p.Type)}
		if p.Dir != ast.DirOut {
			decl.Init = ast.CloneExpr(args[i])
		}
		out = append(out, decl)
	}

	inlined := ast.CloneBlock(body)
	// Each expansion needs fresh names for the body's own declarations:
	// a callee inlined at two sites in one block would otherwise declare
	// its locals twice. (UniqueNames guarantees the body's names are
	// unique internally, so a flat rename is capture-free.)
	ast.InspectStmt(inlined, func(st ast.Stmt) bool {
		switch st := st.(type) {
		case *ast.VarDeclStmt:
			ren[st.Name] = in.gen.Fresh("tmp_" + st.Name)
		case *ast.ConstDeclStmt:
			ren[st.Name] = in.gen.Fresh("tmp_" + st.Name)
		}
		return true
	}, nil)
	substituteIdents(inlined, ren)
	ast.InspectStmt(inlined, func(st ast.Stmt) bool {
		switch st := st.(type) {
		case *ast.VarDeclStmt:
			if nn, ok := ren[st.Name]; ok {
				st.Name = nn
			}
		case *ast.ConstDeclStmt:
			if nn, ok := ren[st.Name]; ok {
				st.Name = nn
			}
		}
		return true
	}, nil)

	escapes := mayEscape(inlined)
	var doneVar, exitedVar, retVar string
	if escapes {
		doneVar = in.gen.Fresh("tmp_done")
		out = append(out, &ast.VarDeclStmt{Name: doneVar, Type: &ast.BoolType{}, Init: ast.Bool(false)})
		if containsExit(inlined) {
			exitedVar = in.gen.Fresh("tmp_exited")
			out = append(out, &ast.VarDeclStmt{Name: exitedVar, Type: &ast.BoolType{}, Init: ast.Bool(false)})
		}
	}
	if resultLV != nil && ret != nil {
		if _, isVoid := ret.(*ast.VoidType); !isVoid {
			retVar = in.gen.Fresh("tmp_retval")
			out = append(out, &ast.VarDeclStmt{Name: retVar, Type: ast.CloneType(ret)})
		}
	}

	guarded := in.guardEscapes(inlined.Stmts, doneVar, exitedVar, retVar)
	out = append(out, guarded...)

	// Copy-out, left to right — performed even on exit paths (the
	// specification clarification from §7.2 / Fig. 5f).
	for i, p := range params {
		if p.Dir.Writes() {
			out = append(out, ast.Assign(ast.CloneExpr(args[i]), ast.N(tmpNames[i])))
		}
	}
	if retVar != "" {
		out = append(out, ast.Assign(ast.CloneExpr(resultLV), ast.N(retVar)))
	}
	// Re-raise exit after copy-out.
	if exitedVar != "" {
		out = append(out, ast.If(ast.N(exitedVar), ast.Block(&ast.ExitStmt{}), nil))
	}
	return out
}

func containsExit(s ast.Stmt) bool {
	found := false
	ast.InspectStmt(s, func(st ast.Stmt) bool {
		if _, ok := st.(*ast.ExitStmt); ok {
			found = true
			return false
		}
		return true
	}, nil)
	return found
}

// guardEscapes rewrites return/exit statements into guard-variable updates
// and predicates trailing statements on "not done".
func (in *inliner) guardEscapes(stmts []ast.Stmt, doneVar, exitedVar, retVar string) []ast.Stmt {
	var out []ast.Stmt
	for i, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			if retVar != "" && s.Value != nil {
				out = append(out, ast.Assign(ast.N(retVar), s.Value))
			}
			if doneVar != "" {
				out = append(out, ast.Assign(ast.N(doneVar), ast.Bool(true)))
			}
			return out // statements after an unconditional return are dead
		case *ast.ExitStmt:
			if exitedVar != "" {
				out = append(out, ast.Assign(ast.N(exitedVar), ast.Bool(true)))
			}
			if doneVar != "" {
				out = append(out, ast.Assign(ast.N(doneVar), ast.Bool(true)))
			}
			return out
		case *ast.IfStmt:
			esc := mayEscape(s)
			if esc {
				s.Then = &ast.BlockStmt{Stmts: in.guardEscapes(s.Then.Stmts, doneVar, exitedVar, retVar)}
				if s.Else != nil {
					g := in.guardEscapes([]ast.Stmt{s.Else}, doneVar, exitedVar, retVar)
					if len(g) == 1 {
						s.Else = g[0]
					} else {
						s.Else = &ast.BlockStmt{Stmts: g}
					}
				}
				out = append(out, s)
				rest := in.guardEscapes(stmts[i+1:], doneVar, exitedVar, retVar)
				if len(rest) > 0 {
					notDone := &ast.UnaryExpr{Op: ast.OpLNot, X: ast.N(doneVar)}
					out = append(out, ast.If(notDone, ast.Block(rest...), nil))
				}
				return out
			}
			out = append(out, s)
		case *ast.BlockStmt:
			if mayEscape(s) {
				s.Stmts = in.guardEscapes(s.Stmts, doneVar, exitedVar, retVar)
				out = append(out, s)
				rest := in.guardEscapes(stmts[i+1:], doneVar, exitedVar, retVar)
				if len(rest) > 0 {
					notDone := &ast.UnaryExpr{Op: ast.OpLNot, X: ast.N(doneVar)}
					out = append(out, ast.If(notDone, ast.Block(rest...), nil))
				}
				return out
			}
			out = append(out, s)
		case *ast.SwitchStmt:
			if mayEscape(s) {
				for j := range s.Cases {
					s.Cases[j].Body = &ast.BlockStmt{
						Stmts: in.guardEscapes(s.Cases[j].Body.Stmts, doneVar, exitedVar, retVar),
					}
				}
				out = append(out, s)
				rest := in.guardEscapes(stmts[i+1:], doneVar, exitedVar, retVar)
				if len(rest) > 0 {
					notDone := &ast.UnaryExpr{Op: ast.OpLNot, X: ast.N(doneVar)}
					out = append(out, ast.If(notDone, ast.Block(rest...), nil))
				}
				return out
			}
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}
