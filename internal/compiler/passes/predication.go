package passes

import (
	"gauntlet/internal/p4/ast"
)

// Predication converts if statements inside actions into straight-line
// conditional assignments, the transformation hardware back ends like
// Tofino require (actions must be branch-free). A recent improvement to
// this P4C pass caused at least 4 of the paper's bugs (§7.2 "consequences
// of compiler changes"); the reference implementation here is the correct
// version, and the bug registry reproduces the broken ones.
//
// Only ifs whose subtree consists of assignments, declarations and nested
// ifs are predicated; anything with calls or exits is left alone.
type Predication struct{}

// Name identifies the pass.
func (Predication) Name() string { return "Predication" }

// Run predicates every action body in the program.
func (p Predication) Run(prog *ast.Program) (*ast.Program, error) {
	gen := NewNameGen(prog)
	for _, d := range prog.Decls {
		ctrl, ok := d.(*ast.ControlDecl)
		if !ok {
			continue
		}
		for _, l := range ctrl.Locals {
			if a, ok := l.(*ast.ActionDecl); ok {
				a.Body = predicateBlock(gen, a.Body)
			}
		}
	}
	return prog, nil
}

func predicateBlock(gen *NameGen, b *ast.BlockStmt) *ast.BlockStmt {
	if b == nil {
		return nil
	}
	var out []ast.Stmt
	for _, s := range b.Stmts {
		out = append(out, predicateStmt(gen, s)...)
	}
	b.Stmts = out
	return b
}

func predicateStmt(gen *NameGen, s ast.Stmt) []ast.Stmt {
	iff, ok := s.(*ast.IfStmt)
	if !ok {
		if blk, isBlk := s.(*ast.BlockStmt); isBlk {
			return []ast.Stmt{predicateBlock(gen, blk)}
		}
		return []ast.Stmt{s}
	}
	if !predicable(iff) {
		// Recurse into branches anyway; inner ifs may qualify.
		iff.Then = predicateBlock(gen, iff.Then)
		if els, ok := iff.Else.(*ast.BlockStmt); ok {
			iff.Else = predicateBlock(gen, els)
		}
		return []ast.Stmt{iff}
	}

	pred := gen.Fresh("pred")
	out := []ast.Stmt{
		&ast.VarDeclStmt{Name: pred, Type: &ast.BoolType{}, Init: iff.Cond},
	}
	out = append(out, predicateGuarded(gen, iff.Then.Stmts, ast.N(pred))...)
	if iff.Else != nil {
		notPred := &ast.UnaryExpr{Op: ast.OpLNot, X: ast.N(pred)}
		var elseStmts []ast.Stmt
		switch els := iff.Else.(type) {
		case *ast.BlockStmt:
			elseStmts = els.Stmts
		default:
			elseStmts = []ast.Stmt{els}
		}
		out = append(out, predicateGuarded(gen, elseStmts, notPred)...)
	}
	return out
}

// predicateGuarded rewrites statements under a predicate expression: every
// assignment "lhs = rhs" becomes "lhs = pred ? rhs : lhs"; nested ifs
// conjoin their condition with the predicate.
func predicateGuarded(gen *NameGen, stmts []ast.Stmt, pred ast.Expr) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			out = append(out, ast.Assign(s.LHS, &ast.MuxExpr{
				Cond: ast.CloneExpr(pred),
				Then: s.RHS,
				Else: ast.CloneExpr(s.LHS),
			}))
		case *ast.VarDeclStmt:
			// Fresh local: the declaration itself is unconditional; its
			// value only feeds predicated assignments.
			out = append(out, s)
		case *ast.ConstDeclStmt:
			out = append(out, s)
		case *ast.EmptyStmt:
		case *ast.BlockStmt:
			out = append(out, predicateGuarded(gen, s.Stmts, pred)...)
		case *ast.IfStmt:
			// Both predicates must be computed before either branch's
			// assignments run: the then branch may overwrite variables
			// the condition reads (this ordering was the essence of the
			// Predication regressions the paper reports, §7.2).
			inner := gen.Fresh("pred")
			out = append(out, &ast.VarDeclStmt{
				Name: inner,
				Type: &ast.BoolType{},
				Init: ast.Bin(ast.OpLAnd, ast.CloneExpr(pred), s.Cond),
			})
			var innerElse string
			if s.Else != nil {
				innerElse = gen.Fresh("pred")
				out = append(out, &ast.VarDeclStmt{
					Name: innerElse,
					Type: &ast.BoolType{},
					Init: ast.Bin(ast.OpLAnd, ast.CloneExpr(pred),
						&ast.UnaryExpr{Op: ast.OpLNot, X: ast.CloneExpr(s.Cond)}),
				})
			}
			out = append(out, predicateGuarded(gen, s.Then.Stmts, ast.N(inner))...)
			if s.Else != nil {
				var elseStmts []ast.Stmt
				switch els := s.Else.(type) {
				case *ast.BlockStmt:
					elseStmts = els.Stmts
				default:
					elseStmts = []ast.Stmt{els}
				}
				out = append(out, predicateGuarded(gen, elseStmts, ast.N(innerElse))...)
			}
		default:
			// predicable() should have excluded these.
			out = append(out, s)
		}
	}
	return out
}

// predicable reports whether the if statement's whole subtree consists of
// assignments, declarations and nested ifs, with effect-free conditions.
func predicable(s ast.Stmt) bool {
	ok := true
	ast.InspectStmt(s, func(st ast.Stmt) bool {
		switch st.(type) {
		case *ast.AssignStmt, *ast.VarDeclStmt, *ast.ConstDeclStmt,
			*ast.IfStmt, *ast.BlockStmt, *ast.EmptyStmt:
			return true
		default:
			ok = false
			return false
		}
	}, func(e ast.Expr) bool {
		if _, isCall := e.(*ast.CallExpr); isCall {
			ok = false
			return false
		}
		return true
	})
	return ok
}
