module gauntlet

go 1.24
