// Command benchjson converts `go test -bench` output (read from stdin)
// into the repository's benchmark-trajectory artifact (BENCH_10.json,
// written to stdout): one JSON object with the raw per-benchmark numbers
// plus the headline metrics the trajectory tracks — programs/sec through
// the validation pipeline, ns per equivalence query, the structural
// gate-cache reuse rate, the corpus engine's coverage metrics
// (admission rate, unique coverage fingerprints, mutation-mode
// throughput), the serve mode's per-epoch context bytes, the concolic
// fast path's falsification rate and per-query cost, and the speculative
// reducer's speedup and waste over exact serial ddmin.
//
// It doubles as the CI smoke gate: missing headline benchmarks, a zero
// gate-reuse rate, mutation-mode throughput below half of
// generation-mode, per-epoch context memory growing more than 15%
// epoch-over-epoch (the serve-mode plateau: rotation must actually bound
// steady-state memory), the robustness layer — stage watchdogs, the
// oracle deadline ladder and the durable journal/checkpoint path —
// costing more than 5% of plain fuzz throughput, the introspection
// plane (metrics registry plus provenance assembly) costing more than
// 5% of uninstrumented throughput, a zero concrete
// falsification rate on the defect-seeded workload, the concolic
// stage costing more than 5% over solver-only ns/equivalence-query, a
// speculatively reduced witness differing by even one byte from the
// serial reduction, speculative reduction falling below its
// core-count-scaled speedup floor, the fleet coordinator costing more
// than 10% of direct-engine throughput with one worker, or a two-worker
// fleet falling below its core-count-scaled speedup floor over one
// worker exit nonzero, so a regression fails the workflow instead of
// silently flattening the trajectory.
//
// Usage:
//
//	go test -run=NONE -bench='...' . | go run ./cmd/benchjson > BENCH_10.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark line.
type Bench struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the BENCH_10.json schema.
type Artifact struct {
	// Headline trajectory metrics.
	ProgramsPerSec      float64 `json:"programs_per_sec"`
	NsPerEquivalenceQry float64 `json:"ns_per_equivalence_query"`
	GatesReusedPct      float64 `json:"gates_reused_pct"`
	SimpResolvedPerRun  float64 `json:"simp_resolved_per_run"`
	EngineXVsSequential float64 `json:"engine_x_vs_sequential"`
	Table2CampaignSecs  float64 `json:"table2_campaign_secs"`
	Sec52NsPerProgram   float64 `json:"sec52_ns_per_program"`

	// Corpus engine metrics (BenchmarkCorpusFuzz): generation-mode vs
	// mutation-mode throughput over the same fixed budget, the
	// coverage-keyed admission rate, and the behavioural-diversity
	// comparison (distinct coverage fingerprints per run).
	CorpusGenProgramsPerSec float64 `json:"corpus_generation_programs_per_sec"`
	CorpusMutProgramsPerSec float64 `json:"corpus_mutation_programs_per_sec"`
	CorpusMutVsGenX         float64 `json:"corpus_mutation_vs_generation_x"`
	CorpusAdmissionRatePct  float64 `json:"corpus_admission_rate_pct"`
	CoverageFingerprintsGen float64 `json:"coverage_fingerprints_generation"`
	CoverageFingerprintsMut float64 `json:"coverage_fingerprints_mutation"`
	CorpusMutatedPerRun     float64 `json:"corpus_mutated_per_run"`

	// Serve-mode epoch metrics (BenchmarkServeEpochs): the retired
	// interner bytes of three consecutive epochs over a fixed
	// 64-programs-per-epoch budget, and the worst epoch-over-epoch growth
	// ratio. The plateau gate fails the build when any epoch exceeds the
	// previous by more than 15%.
	ServeEpochCtxBytes  []float64 `json:"serve_epoch_ctx_bytes"`
	ServeEpochGrowthPct float64   `json:"serve_epoch_worst_growth_pct"`

	// Concolic fast-path metrics (BenchmarkConcolicFalsify): the same
	// defect-seeded validation workload with the bit-parallel tape stage
	// off and on. The gate fails the build when the on-mode falsification
	// rate is zero (the tape never preempted a solver call) or when the
	// on-mode ns/equivalence-query exceeds solver-only by more than 5%.
	ConcolicOffNsPerQuery float64 `json:"concolic_off_ns_per_equivalence_query"`
	ConcolicOnNsPerQuery  float64 `json:"concolic_on_ns_per_equivalence_query"`
	ConcolicOnVsOffX      float64 `json:"concolic_on_vs_off_x"`
	ConcolicFalsifiedPct  float64 `json:"concolic_falsified_pct"`
	ConcolicPacketsPerSec float64 `json:"concolic_packets_per_sec"`

	// Robustness overhead (BenchmarkResilientFuzz): the same engine
	// workload plain versus armed with stage watchdogs, the oracle
	// deadline ladder and durable journal/checkpointing. The gate fails
	// the build when arming costs more than 5% of plain programs/sec.
	ResilientPlainProgramsPerSec float64 `json:"resilient_plain_programs_per_sec"`
	ResilientArmedProgramsPerSec float64 `json:"resilient_armed_programs_per_sec"`
	ResilientOverheadPct         float64 `json:"resilient_overhead_pct"`

	// Introspection-plane overhead (BenchmarkObsOverhead): the same
	// engine workload plain versus with the metrics registry installed
	// (per-stage and per-tier latency histograms plus the stats
	// collector; provenance assembly runs in both arms). The gate fails
	// the build when instrumenting costs more than 5% of plain
	// programs/sec — the contract that observation changes cost only.
	ObsPlainProgramsPerSec        float64 `json:"obs_plain_programs_per_sec"`
	ObsInstrumentedProgramsPerSec float64 `json:"obs_instrumented_programs_per_sec"`
	ObsOverheadPct                float64 `json:"obs_overhead_pct"`

	// Speculative-reduction metrics (BenchmarkParallelReduce): exact
	// serial ddmin vs a speculation window of 8 over the same harvested
	// crash witnesses. The byte-identity gate fails the build on any
	// witness diff; the speedup gate scales with the runner's cores —
	// ≥2x on 8+ procs, ≥1.1x on 2+, and within 2x of serial (≥0.5x) on a
	// single-core runner, where speculation can only cost waste.
	ReduceSerialNsPerWitness float64 `json:"reduce_serial_ns_per_witness"`
	ReduceSpec8NsPerWitness  float64 `json:"reduce_spec8_ns_per_witness"`
	ReduceSpec8XVsSerial     float64 `json:"reduce_spec8_x_vs_serial"`
	ReduceWastedProbesPct    float64 `json:"reduce_wasted_probes_pct"`
	ReduceWitnessDiff        float64 `json:"reduce_witness_diff"`
	ReduceProcs              float64 `json:"reduce_procs"`

	// Fleet sharding metrics (BenchmarkFleetFuzz): the same fixed-seed,
	// pure-generation campaign run directly on one engine, through a
	// coordinator with one worker (protocol + lease-merge machinery as
	// pure overhead), and with two workers. The overhead gate bounds the
	// one-worker tax at 10% of direct throughput; the speedup gate scales
	// with the runner — two workers must beat one by ≥1.6x on 4+ procs
	// and ≥1.1x on 2+, while a single-core runner has no parallelism to
	// surface and only the overhead gate applies.
	FleetDirectProgramsPerSec   float64 `json:"fleet_direct_programs_per_sec"`
	Fleet1WorkerProgramsPerSec  float64 `json:"fleet_1worker_programs_per_sec"`
	Fleet2WorkersProgramsPerSec float64 `json:"fleet_2workers_programs_per_sec"`
	Fleet2WorkersXVs1           float64 `json:"fleet_2workers_x_vs_1worker"`
	FleetCoordOverheadPct       float64 `json:"fleet_coordinator_overhead_pct"`
	FleetProcs                  float64 `json:"fleet_procs"`

	// Raw parses, keyed by benchmark name (GOMAXPROCS suffix stripped).
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	benches := map[string]Bench{}
	lookup := map[string]Bench{} // raw names plus -GOMAXPROCS-stripped aliases
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		iters, _ := strconv.ParseInt(fields[1], 10, 64)
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		b := Bench{Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
		benches[name] = b
		lookup[name] = b
		// go test appends -GOMAXPROCS on multi-proc runs (absent when
		// GOMAXPROCS=1, and ambiguous against subbench names like
		// workers-8), so also register the name with one trailing -N
		// stripped; headline lookups try the canonical name either way.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				if _, exists := lookup[name[:i]]; !exists {
					lookup[name[:i]] = b
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read: %v", err)
	}

	art := Artifact{Benchmarks: benches}
	var missing []string
	get := func(name string) (Bench, bool) {
		b, ok := lookup[name]
		if !ok {
			missing = append(missing, name)
		}
		return b, ok
	}
	if b, ok := get("BenchmarkEquivalenceQuery"); ok {
		art.NsPerEquivalenceQry = b.NsPerOp
	}
	if b, ok := get("BenchmarkTable2_BugSummary"); ok {
		art.Table2CampaignSecs = b.NsPerOp / 1e9
	}
	if b, ok := get("BenchmarkSec52_PipelineThroughput"); ok {
		art.Sec52NsPerProgram = b.NsPerOp
	}
	if b, ok := get("BenchmarkGateReuse"); ok {
		art.GatesReusedPct = b.Metrics["gates-reused-%"]
	}
	if b, ok := get("BenchmarkCorpusFuzz/generation"); ok {
		art.CorpusGenProgramsPerSec = b.Metrics["programs/sec"]
		art.CoverageFingerprintsGen = b.Metrics["coverage-fingerprints/run"]
	}
	if b, ok := get("BenchmarkCorpusFuzz/mutation"); ok {
		art.CorpusMutProgramsPerSec = b.Metrics["programs/sec"]
		art.CoverageFingerprintsMut = b.Metrics["coverage-fingerprints/run"]
		art.CorpusAdmissionRatePct = b.Metrics["admission-%"]
		art.CorpusMutatedPerRun = b.Metrics["mutated/run"]
	}
	for _, name := range []string{
		"BenchmarkEngineFuzz/workers-8",
		"BenchmarkEngineFuzz/workers-1",
		"BenchmarkEngineFuzz/sequential-baseline",
	} {
		if b, ok := lookup[name]; ok && art.ProgramsPerSec == 0 {
			art.ProgramsPerSec = b.Metrics["programs/sec"]
			art.EngineXVsSequential = b.Metrics["x-vs-sequential"]
			art.SimpResolvedPerRun = b.Metrics["simp-resolved/run"]
		}
	}
	if art.ProgramsPerSec == 0 {
		missing = append(missing, "BenchmarkEngineFuzz/*")
	}
	if len(missing) > 0 {
		fatalf("missing headline benchmarks: %s", strings.Join(missing, ", "))
	}
	if art.GatesReusedPct <= 0 {
		fatalf("gate-reuse rate is %v: the structural-hash path reported no sharing", art.GatesReusedPct)
	}
	if art.CorpusGenProgramsPerSec > 0 {
		art.CorpusMutVsGenX = art.CorpusMutProgramsPerSec / art.CorpusGenProgramsPerSec
	}
	// The corpus scheduler's cost gate: mutation mode adds a type-check
	// gate, the novelty filter and the round-fold barrier — if that ever
	// costs more than half the generation-mode throughput, the feedback
	// loop is no longer pulling its weight.
	if art.CorpusMutVsGenX < 0.5 {
		fatalf("mutation-mode throughput is %.2fx generation-mode (%.1f vs %.1f programs/sec): below the 0.5x gate",
			art.CorpusMutVsGenX, art.CorpusMutProgramsPerSec, art.CorpusGenProgramsPerSec)
	}
	if art.CorpusMutatedPerRun <= 0 {
		fatalf("mutation mode mutated no programs: the corpus feedback loop is dead")
	}
	if b, ok := lookup["BenchmarkServeEpochs"]; !ok {
		fatalf("missing headline benchmark: BenchmarkServeEpochs (the serve-mode plateau gate)")
	} else {
		for i := 1; ; i++ {
			v, ok := b.Metrics[fmt.Sprintf("epoch%d-ctx-bytes", i)]
			if !ok {
				break
			}
			art.ServeEpochCtxBytes = append(art.ServeEpochCtxBytes, v)
		}
		if len(art.ServeEpochCtxBytes) < 2 {
			fatalf("BenchmarkServeEpochs reported %d epochs; need at least 2 for the plateau gate", len(art.ServeEpochCtxBytes))
		}
		for i, v := range art.ServeEpochCtxBytes {
			if v <= 0 {
				fatalf("epoch %d context bytes are %v: rotation reported an empty epoch", i+1, v)
			}
		}
		for i := 1; i < len(art.ServeEpochCtxBytes); i++ {
			growth := (art.ServeEpochCtxBytes[i]/art.ServeEpochCtxBytes[i-1] - 1) * 100
			if growth > art.ServeEpochGrowthPct {
				art.ServeEpochGrowthPct = growth
			}
		}
		// The serve-mode memory contract: context rotation bounds
		// steady-state memory, so each epoch stays within 15% of its
		// predecessor. Monotone growth here is the multi-day OOM in
		// miniature.
		if art.ServeEpochGrowthPct > 15 {
			fatalf("per-epoch context bytes grew %.1f%% epoch-over-epoch (%v): rotation is not bounding memory",
				art.ServeEpochGrowthPct, art.ServeEpochCtxBytes)
		}
	}

	if b, ok := get("BenchmarkConcolicFalsify/off"); ok {
		art.ConcolicOffNsPerQuery = b.Metrics["ns/equivalence-query"]
	}
	if b, ok := get("BenchmarkConcolicFalsify/on"); ok {
		art.ConcolicOnNsPerQuery = b.Metrics["ns/equivalence-query"]
		art.ConcolicFalsifiedPct = b.Metrics["falsified-%"]
		art.ConcolicPacketsPerSec = b.Metrics["packets/sec"]
		art.ConcolicOnVsOffX = b.Metrics["x-vs-off"]
	}

	if b, ok := get("BenchmarkResilientFuzz/plain"); ok {
		art.ResilientPlainProgramsPerSec = b.Metrics["programs/sec"]
	}
	if b, ok := get("BenchmarkResilientFuzz/armed"); ok {
		art.ResilientArmedProgramsPerSec = b.Metrics["programs/sec"]
		art.ResilientOverheadPct = b.Metrics["overhead-%"]
	}
	if b, ok := get("BenchmarkObsOverhead/plain"); ok {
		art.ObsPlainProgramsPerSec = b.Metrics["programs/sec"]
	}
	if b, ok := get("BenchmarkObsOverhead/instrumented"); ok {
		art.ObsInstrumentedProgramsPerSec = b.Metrics["programs/sec"]
		art.ObsOverheadPct = b.Metrics["overhead-%"]
	}
	if b, ok := get("BenchmarkParallelReduce/serial"); ok {
		art.ReduceSerialNsPerWitness = b.Metrics["ns/witness"]
	}
	if b, ok := get("BenchmarkParallelReduce/spec8"); ok {
		art.ReduceSpec8NsPerWitness = b.Metrics["ns/witness"]
		art.ReduceSpec8XVsSerial = b.Metrics["x-vs-serial"]
		art.ReduceWastedProbesPct = b.Metrics["wasted-%"]
		art.ReduceWitnessDiff = b.Metrics["witness-diff"]
		art.ReduceProcs = b.Metrics["procs"]
	}
	if b, ok := get("BenchmarkFleetFuzz/direct"); ok {
		art.FleetDirectProgramsPerSec = b.Metrics["programs/sec"]
	}
	if b, ok := get("BenchmarkFleetFuzz/workers-1"); ok {
		art.Fleet1WorkerProgramsPerSec = b.Metrics["programs/sec"]
		art.FleetCoordOverheadPct = b.Metrics["overhead-%"]
	}
	if b, ok := get("BenchmarkFleetFuzz/workers-2"); ok {
		art.Fleet2WorkersProgramsPerSec = b.Metrics["programs/sec"]
		art.Fleet2WorkersXVs1 = b.Metrics["x-vs-1worker"]
		art.FleetProcs = b.Metrics["procs"]
	}
	if len(missing) > 0 {
		fatalf("missing headline benchmarks: %s", strings.Join(missing, ", "))
	}
	// The crash-resilience cost gate: watchdog supervision, the deadline
	// ladder and fsynced journal/checkpoint writes must stay inside 5% of
	// plain fuzz throughput, or robustness is taxing every finding.
	if art.ResilientOverheadPct > 5 {
		fatalf("robustness layer costs %.1f%% of plain fuzz throughput (%.1f vs %.1f programs/sec): above the 5%% gate",
			art.ResilientOverheadPct, art.ResilientArmedProgramsPerSec, art.ResilientPlainProgramsPerSec)
	}

	// The introspection cost gate: sharded atomic instrument writes on
	// the hot path must stay inside 5% of uninstrumented throughput, or
	// watching the fuzzer is slowing the fuzzer.
	if art.ObsOverheadPct > 5 {
		fatalf("introspection plane costs %.1f%% of plain fuzz throughput (%.1f vs %.1f programs/sec): above the 5%% gate",
			art.ObsOverheadPct, art.ObsInstrumentedProgramsPerSec, art.ObsPlainProgramsPerSec)
	}

	// The concolic fast-path gates: on the defect-seeded workload some
	// fresh verdicts must resolve from a concrete counterexample with zero
	// solver calls, and the tape stage must pay for itself — on-mode may
	// cost at most 5% over solver-only per equivalence query.
	if art.ConcolicFalsifiedPct <= 0 {
		fatalf("concolic falsification rate is %v%%: the tape never preempted a solver call on a defect-seeded workload",
			art.ConcolicFalsifiedPct)
	}
	if art.ConcolicOnVsOffX > 1.05 {
		fatalf("concolic fast path costs %.2fx solver-only ns/equivalence-query (%.0f vs %.0f): above the 1.05x gate",
			art.ConcolicOnVsOffX, art.ConcolicOnNsPerQuery, art.ConcolicOffNsPerQuery)
	}

	// The speculative-reduction gates. Byte identity is unconditional:
	// speculation commits in canonical candidate order, so a diverging
	// witness means the reducer's determinism argument is broken, not
	// that the machine was slow. The speedup floor scales with the cores
	// actually available to speculate on.
	if art.ReduceWitnessDiff != 0 {
		fatalf("speculative reduction produced %v witnesses differing from serial ddmin: commit-order determinism is broken",
			art.ReduceWitnessDiff)
	}
	reduceFloor := 0.5
	switch {
	case art.ReduceProcs >= 8:
		reduceFloor = 2.0
	case art.ReduceProcs >= 2:
		reduceFloor = 1.1
	}
	if art.ReduceSpec8XVsSerial < reduceFloor {
		fatalf("speculative reduction is %.2fx serial on %.0f procs (%.0f vs %.0f ns/witness, %.1f%% probes wasted): below the %.1fx floor",
			art.ReduceSpec8XVsSerial, art.ReduceProcs,
			art.ReduceSpec8NsPerWitness, art.ReduceSerialNsPerWitness,
			art.ReduceWastedProbesPct, reduceFloor)
	}

	// The fleet-sharding gates. Running the campaign through the
	// coordinator with a single worker exercises the protocol, the lease
	// table, delta shipping and the canonical-order merge with no
	// parallelism to hide them, so that arm bounds the machinery's cost.
	// The scaling floor only engages where a second worker has real cores
	// to run on.
	if art.FleetCoordOverheadPct > 10 {
		fatalf("fleet coordinator costs %.1f%% of direct-engine throughput with one worker (%.1f vs %.1f programs/sec): above the 10%% gate",
			art.FleetCoordOverheadPct, art.Fleet1WorkerProgramsPerSec, art.FleetDirectProgramsPerSec)
	}
	fleetFloor := 0.0
	switch {
	case art.FleetProcs >= 4:
		fleetFloor = 1.6
	case art.FleetProcs >= 2:
		fleetFloor = 1.1
	}
	if fleetFloor > 0 && art.Fleet2WorkersXVs1 < fleetFloor {
		fatalf("two-worker fleet is %.2fx one worker on %.0f procs (%.1f vs %.1f programs/sec): below the %.1fx floor",
			art.Fleet2WorkersXVs1, art.FleetProcs,
			art.Fleet2WorkersProgramsPerSec, art.Fleet1WorkerProgramsPerSec, fleetFloor)
	}

	out, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	fmt.Printf("%s\n", out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
