// Command benchjson converts `go test -bench` output (read from stdin)
// into the repository's benchmark-trajectory artifact (BENCH_3.json,
// written to stdout): one JSON object with the raw per-benchmark numbers
// plus the three headline metrics the trajectory tracks — programs/sec
// through the validation pipeline, ns per equivalence query, and the
// structural gate-cache reuse rate.
//
// It doubles as the CI smoke gate: missing headline benchmarks or a zero
// gate-reuse rate exit nonzero, so a regression in the structural-hash
// path fails the workflow instead of silently flattening the trajectory.
//
// Usage:
//
//	go test -run=NONE -bench='...' . | go run ./cmd/benchjson > BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark line.
type Bench struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the BENCH_3.json schema.
type Artifact struct {
	// Headline trajectory metrics.
	ProgramsPerSec       float64 `json:"programs_per_sec"`
	NsPerEquivalenceQry  float64 `json:"ns_per_equivalence_query"`
	GatesReusedPct       float64 `json:"gates_reused_pct"`
	SimpResolvedPerRun   float64 `json:"simp_resolved_per_run"`
	EngineXVsSequential  float64 `json:"engine_x_vs_sequential"`
	Table2CampaignSecs   float64 `json:"table2_campaign_secs"`
	Sec52NsPerProgram    float64 `json:"sec52_ns_per_program"`

	// Raw parses, keyed by benchmark name (GOMAXPROCS suffix stripped).
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	benches := map[string]Bench{}
	lookup := map[string]Bench{} // raw names plus -GOMAXPROCS-stripped aliases
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		iters, _ := strconv.ParseInt(fields[1], 10, 64)
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		b := Bench{Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
		benches[name] = b
		lookup[name] = b
		// go test appends -GOMAXPROCS on multi-proc runs (absent when
		// GOMAXPROCS=1, and ambiguous against subbench names like
		// workers-8), so also register the name with one trailing -N
		// stripped; headline lookups try the canonical name either way.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				if _, exists := lookup[name[:i]]; !exists {
					lookup[name[:i]] = b
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read: %v", err)
	}

	art := Artifact{Benchmarks: benches}
	var missing []string
	get := func(name string) (Bench, bool) {
		b, ok := lookup[name]
		if !ok {
			missing = append(missing, name)
		}
		return b, ok
	}
	if b, ok := get("BenchmarkEquivalenceQuery"); ok {
		art.NsPerEquivalenceQry = b.NsPerOp
	}
	if b, ok := get("BenchmarkTable2_BugSummary"); ok {
		art.Table2CampaignSecs = b.NsPerOp / 1e9
	}
	if b, ok := get("BenchmarkSec52_PipelineThroughput"); ok {
		art.Sec52NsPerProgram = b.NsPerOp
	}
	if b, ok := get("BenchmarkGateReuse"); ok {
		art.GatesReusedPct = b.Metrics["gates-reused-%"]
	}
	for _, name := range []string{
		"BenchmarkEngineFuzz/workers-8",
		"BenchmarkEngineFuzz/workers-1",
		"BenchmarkEngineFuzz/sequential-baseline",
	} {
		if b, ok := lookup[name]; ok && art.ProgramsPerSec == 0 {
			art.ProgramsPerSec = b.Metrics["programs/sec"]
			art.EngineXVsSequential = b.Metrics["x-vs-sequential"]
			art.SimpResolvedPerRun = b.Metrics["simp-resolved/run"]
		}
	}
	if art.ProgramsPerSec == 0 {
		missing = append(missing, "BenchmarkEngineFuzz/*")
	}
	if len(missing) > 0 {
		fatalf("missing headline benchmarks: %s", strings.Join(missing, ", "))
	}
	if art.GatesReusedPct <= 0 {
		fatalf("gate-reuse rate is %v: the structural-hash path reported no sharing", art.GatesReusedPct)
	}

	out, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	fmt.Printf("%s\n", out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
