// Command p4reduce automatically shrinks a P4 program while preserving a
// compiler-observable property — the automation of the paper's manual
// reduction workflow (§8: "we prune the random P4 program that caused the
// bug until we get a sufficiently small program").
//
// Properties:
//
//	-crash        the pipeline must keep crashing (with -bug, the seeded
//	              defect's pipeline is used)
//	-miscompile   translation validation must keep failing (requires -bug)
//
// Usage:
//
//	p4reduce -bug P4C-C-03 -crash program.p4
//	p4reduce -bug P4C-S-16 -miscompile program.p4
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/reduce"
	"gauntlet/internal/validate"
)

func main() {
	bugID := flag.String("bug", "", "seeded bug ID whose instrumented pipeline to use")
	crash := flag.Bool("crash", false, "preserve: the compiler crashes")
	miscompile := flag.Bool("miscompile", false, "preserve: translation validation fails")
	maxConflicts := flag.Int("max-conflicts", 50000, "solver conflict budget")
	flag.Parse()

	if flag.NArg() != 1 || (!*crash && !*miscompile) {
		fmt.Fprintln(os.Stderr, "usage: p4reduce -bug ID (-crash|-miscompile) program.p4")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := types.Check(prog); err != nil {
		fatal(err)
	}

	passes := compiler.DefaultPasses()
	if *bugID != "" {
		bug := bugs.Load().ByID(*bugID)
		if bug == nil {
			fatal(fmt.Errorf("unknown bug %q", *bugID))
		}
		passes = bugs.Instrument(passes, []*bugs.Bug{bug})
	}

	var keep reduce.Predicate
	switch {
	case *crash:
		keep = func(p *ast.Program) bool {
			_, cerr := compiler.New(passes...).Compile(ast.CloneProgram(p))
			var ce *compiler.CrashError
			return errors.As(cerr, &ce)
		}
	case *miscompile:
		keep = func(p *ast.Program) bool {
			res, cerr := compiler.New(passes...).Compile(ast.CloneProgram(p))
			if cerr != nil {
				return false
			}
			verdicts, verr := validate.Snapshots(res, validate.Options{MaxConflicts: *maxConflicts})
			return verr == nil && len(validate.Failures(verdicts)) > 0
		}
	}

	if !keep(prog) {
		fatal(errors.New("the property does not hold on the input program"))
	}
	before := reduce.Size(prog)
	small := reduce.Reduce(prog, keep, reduce.Options{})
	fmt.Fprintf(os.Stderr, "reduced %d -> %d statements\n", before, reduce.Size(small))
	fmt.Println(printer.Print(small))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "p4reduce: %v\n", err)
	os.Exit(1)
}
