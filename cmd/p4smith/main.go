// Command p4smith is the random P4 program generator (§4): it emits
// syntactically sound, well-typed programs for a chosen back-end skeleton.
//
// Usage:
//
//	p4smith [-seed N] [-n COUNT] [-backend v1model|tna] [-stmts N]
//
// Each program is printed to stdout, separated by a comment banner.
package main

import (
	"flag"
	"fmt"
	"os"

	"gauntlet/internal/generator"
	"gauntlet/internal/p4/printer"
)

func main() {
	seed := flag.Int64("seed", 1, "first generation seed")
	n := flag.Int("n", 1, "number of programs to generate")
	backend := flag.String("backend", "v1model", "package skeleton: v1model or tna")
	stmts := flag.Int("stmts", 8, "maximum statements per block body")
	flag.Parse()

	for i := 0; i < *n; i++ {
		cfg := generator.DefaultConfig(*seed + int64(i))
		cfg.MaxStmts = *stmts
		switch *backend {
		case "v1model":
			cfg.Backend = generator.V1Model
		case "tna":
			cfg.Backend = generator.TNA
		default:
			fmt.Fprintf(os.Stderr, "p4smith: unknown backend %q\n", *backend)
			os.Exit(2)
		}
		prog := generator.Generate(cfg)
		if *n > 1 {
			fmt.Printf("// ---- seed %d ----\n", *seed+int64(i))
		}
		fmt.Println(printer.Print(prog))
	}
}
