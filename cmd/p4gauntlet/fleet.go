package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gauntlet/internal/bugs"
	"gauntlet/internal/core"
	"gauntlet/internal/corpus"
	"gauntlet/internal/fleet"
	"gauntlet/internal/obs"
	"gauntlet/internal/persist"
)

// fleetFlags carries the coordinator/worker-specific flags; the shared
// campaign parameters ride in fuzzFlags.
type fleetFlags struct {
	listen       string
	connect      string
	forkWorkers  int
	leaseSlots   int64
	leaseTimeout time.Duration
	workerName   string
}

// listenAddr splits ADDR into a network: an address containing a path
// separator is a unix socket, anything else TCP — fleet campaigns on one
// box use sockets, cross-box ones host:port, with no extra flag.
func listenAddr(addr string) (network, address string) {
	if strings.Contains(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// fleetStatusz is the coordinator's /statusz document.
type fleetStatusz struct {
	Mode    string            `json:"mode"`
	PID     int               `json:"pid"`
	Started time.Time         `json:"started"`
	Now     time.Time         `json:"now"`
	Fleet   fleet.FleetStatus `json:"fleet"`
	Corpus  corpus.Stats      `json:"corpus"`
}

// fleetRunConfig translates the shared fuzz flags into the wire config
// every worker receives. Fleet campaigns are pure-generation by
// construction (lease replay must not depend on cross-lease corpus
// state), so an explicit -mutate-ratio > 0 is refused rather than
// silently ignored.
func fleetRunConfig(ff fuzzFlags) (fleet.RunConfig, error) {
	if ff.explicit["mutate-ratio"] && ff.mutateRatio > 0 {
		return fleet.RunConfig{}, fmt.Errorf("-mutate-ratio %g is incompatible with fleet mode: leases replay as pure functions of their seeds, which mutation's cross-lease corpus dependence breaks", ff.mutateRatio)
	}
	if ff.epochPrograms > 0 {
		return fleet.RunConfig{}, fmt.Errorf("-epoch-programs is incompatible with fleet mode: workers run one bounded engine per lease, so memory is bounded by the lease length instead")
	}
	run := fleet.RunConfig{
		Seed:            ff.seed,
		Backend:         ff.backend,
		EngineWorkers:   ff.workers,
		PacketTests:     ff.packets,
		ConcolicOff:     !ff.concolic,
		Reduce:          ff.reduce,
		StageTimeoutMs:  ff.stageTimeout.Milliseconds(),
		OracleTimeoutMs: ff.oracleTimeout.Milliseconds(),
		Defects:         splitDefects(ff.defects),
	}
	// Validate the defect list here, not first on a worker: a typo should
	// fail the coordinator at startup.
	reg := bugs.Load()
	for _, id := range run.Defects {
		if reg.ByID(id) == nil {
			return fleet.RunConfig{}, fmt.Errorf("-defects: registry has no bug %q", id)
		}
	}
	return run, nil
}

func splitDefects(list string) []string {
	var out []string
	for _, id := range strings.Split(list, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// coordinatorMain runs the fleet coordinator: shard the seed budget into
// leases, serve them to workers, merge results in canonical order, own
// the journal/checkpoint, optionally fork a local worker fleet.
func coordinatorMain(ff fuzzFlags, fl fleetFlags) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "p4gauntlet: "+format+"\n", args...)
		os.Exit(2)
	}
	if fl.listen == "" {
		fail("coordinator mode requires -listen ADDR (host:port or a socket path)")
	}
	if ff.seeds <= 0 {
		fail("coordinator mode requires a bounded -seeds budget")
	}
	run, err := fleetRunConfig(ff)
	if err != nil {
		fail("%v", err)
	}

	cfg := fleet.CoordinatorConfig{
		Run:          run,
		StartSeed:    ff.start,
		Seeds:        ff.seeds,
		LeaseSlots:   fl.leaseSlots,
		LeaseTimeout: fl.leaseTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	// Durable state and resume, the serve-mode discipline with the
	// coordinator as the single persistence owner: journal write-ahead
	// happens inside the release path, so only resume restoration and the
	// contradiction checks live here.
	dir := ff.stateDir
	if ff.resumeDir != "" {
		if dir != "" && dir != ff.resumeDir {
			fail("-state and -resume point at different directories")
		}
		dir = ff.resumeDir
	}
	if dir != "" {
		st, err := persist.Open(dir)
		if err != nil {
			fail("state: %v", err)
		}
		defer st.Close()
		cfg.State = st
		if ff.resumeDir != "" {
			cp, err := st.LoadCheckpoint()
			if err != nil {
				fail("resume: %v", err)
			}
			if cp != nil {
				if ff.explicit["seed"] && run.Seed != cp.Seed {
					fail("resume: -seed %d contradicts checkpoint seed %d", run.Seed, cp.Seed)
				}
				cfg.Run.Seed = cp.Seed
				cfg.ResumeWatermark = cp.NextSlot
				if cp.Corpus != nil {
					c, err := corpus.FromSnapshot(cp.Corpus)
					if err != nil {
						fail("resume: corpus: %v", err)
					}
					cfg.Corpus = c
				}
			}
			known, nrec, err := st.KnownFindings()
			if err != nil {
				fail("resume: journal: %v", err)
			}
			cfg.KnownFindings = known
			fmt.Fprintf(os.Stderr, "resume: watermark slot %d, %d journaled findings pre-seeding dedup\n",
				cfg.ResumeWatermark, nrec)
		}
	}

	// Findings stream: human line to stderr, JSONL record to the sink —
	// the fuzz-mode shape with the coordinator as the single emitter.
	var sink io.Writer
	switch ff.jsonl {
	case "":
	case "-":
		sink = os.Stdout
	default:
		f, err := os.OpenFile(ff.jsonl, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		sink = f
	}
	jw := newJSONLWriter(sink, func(what string, err error) {
		fmt.Fprintf(os.Stderr, "p4gauntlet: jsonl %s record lost: %v\n", what, err)
	})
	cfg.OnFinding = func(f core.Finding) {
		fmt.Fprintf(os.Stderr, "seed %d: %s", f.Seed, f.Kind)
		if f.Pass != "" {
			fmt.Fprintf(os.Stderr, " in %s", f.Pass)
		}
		if f.SizeBefore != f.SizeAfter {
			fmt.Fprintf(os.Stderr, " (witness reduced %d -> %d stmts)", f.SizeBefore, f.SizeAfter)
		}
		fmt.Fprintf(os.Stderr, ": %s\n", f.Detail)
		jw.write(f, fmt.Sprintf("finding (seed %d)", f.Seed))
	}

	if ff.httpAddr != "" {
		cfg.Obs = obs.NewRegistry()
	}
	coord, err := fleet.NewCoordinator(cfg)
	if err != nil {
		fail("%v", err)
	}

	if ff.httpAddr != "" {
		started := time.Now()
		admin, err := obs.StartAdmin(ff.httpAddr, obs.AdminConfig{
			Metrics: cfg.Obs,
			Health:  coord.Health,
			Status: func() any {
				return fleetStatusz{
					Mode: "coordinator", PID: os.Getpid(),
					Started: started, Now: time.Now(),
					Fleet: coord.Status(), Corpus: coord.Corpus().Stats(),
				}
			},
		})
		if err != nil {
			fail("%v", err)
		}
		defer func() {
			sdCtx, sdCancel := context.WithTimeout(context.Background(), 3*time.Second)
			admin.Shutdown(sdCtx)
			sdCancel()
		}()
		fmt.Fprintf(os.Stderr, "admin: serving /metrics /statusz /healthz /debug/pprof on http://%s\n", admin.Addr())
	}

	network, address := listenAddr(fl.listen)
	if network == "unix" {
		os.Remove(address) // a stale socket from a killed coordinator
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		fail("listen: %v", err)
	}
	if network == "unix" {
		defer os.Remove(address)
	}
	fmt.Fprintf(os.Stderr, "fleet: coordinator listening on %s://%s (%d seeds, %d-slot leases)\n",
		network, address, ff.seeds, cfg.LeaseSlots)

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	// -fleet N forks N worker processes of this binary against our own
	// socket: one-command local scale-out. The workers draw all campaign
	// configuration over the wire, so the only flags they need are the
	// address and a name.
	var forked []*exec.Cmd
	if fl.forkWorkers > 0 {
		self, err := os.Executable()
		if err != nil {
			fail("fork workers: %v", err)
		}
		for i := 0; i < fl.forkWorkers; i++ {
			cmd := exec.CommandContext(ctx, self,
				"-mode", "worker",
				"-connect", fl.listen,
				"-worker-name", fmt.Sprintf("w%d", i))
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				fail("fork worker %d: %v", i, err)
			}
			forked = append(forked, cmd)
		}
		fmt.Fprintf(os.Stderr, "fleet: forked %d local workers\n", fl.forkWorkers)
	}

	serveErr := coord.Serve(ctx, ln)
	for _, cmd := range forked {
		cmd.Wait() // drained workers exit on their own; reap them
	}
	if serveErr != nil {
		fmt.Fprintf(os.Stderr, "p4gauntlet: fleet: %v\n", serveErr)
		os.Exit(1)
	}
	if err := coord.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "p4gauntlet: fleet: %v\n", err)
		os.Exit(1)
	}
	findings := coord.Findings()
	st := coord.Status()
	fmt.Fprintf(os.Stderr, "fleet: campaign complete: %d programs, %d findings (%d cross-lease duplicates suppressed), %d leases (%d re-issued)\n",
		st.Totals.Generated, len(findings), st.Duplicates, st.LeasesTotal, st.LeasesReissued)
	if len(findings) > 0 {
		os.Exit(1) // the bounded-campaign CI contract, as in fuzz mode
	}
}

// workerMain dials the coordinator (retrying while it boots) and runs
// leases until drained. Campaign configuration arrives over the wire.
func workerMain(fl fleetFlags) {
	if fl.connect == "" {
		fmt.Fprintln(os.Stderr, "p4gauntlet: worker mode requires -connect ADDR")
		os.Exit(2)
	}
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	network, address := listenAddr(fl.connect)
	var conn net.Conn
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err = net.Dial(network, address)
		if err == nil {
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: worker: dial %s: %v\n", fl.connect, err)
			os.Exit(1)
		}
		time.Sleep(100 * time.Millisecond)
	}
	name := fl.workerName
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	wcfg := fleet.WorkerConfig{
		Name: name,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if err := fleet.RunWorker(ctx, conn, wcfg); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "p4gauntlet: worker: %v\n", err)
		os.Exit(1)
	}
}
