package main

import (
	"errors"
	"strings"
	"testing"
)

type failAfter struct {
	n   int
	buf strings.Builder
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("sink full")
	}
	f.n--
	return f.buf.Write(p)
}

// TestJSONLWriterDropAccounting: a sick sink loses the record but
// reports it — onDrop fires with the record kind, the writer never
// panics, and a nil writer is a silent no-op.
func TestJSONLWriterDropAccounting(t *testing.T) {
	var drops []string
	sink := &failAfter{n: 2}
	jw := newJSONLWriter(sink, func(what string, err error) {
		if err == nil {
			t.Error("onDrop called with nil error")
		}
		drops = append(drops, what)
	})
	jw.write(map[string]int{"a": 1}, "stats")
	jw.write(map[string]int{"b": 2}, "finding")
	jw.write(map[string]int{"c": 3}, "stats")   // write error
	jw.write(func() {}, "finding")              // marshal error
	if got := sink.buf.String(); strings.Count(got, "\n") != 2 {
		t.Errorf("sink holds %q, want exactly 2 lines", got)
	}
	if len(drops) != 2 || drops[0] != "stats" || drops[1] != "finding" {
		t.Errorf("drops = %v, want [stats finding]", drops)
	}

	var nilJW *jsonlWriter
	nilJW.write(map[string]int{"x": 1}, "stats") // must not panic
	newJSONLWriter(nil, nil).write(map[string]int{"x": 1}, "stats")
}
