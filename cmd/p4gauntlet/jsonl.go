package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// jsonlWriter serializes JSON-line records from concurrent producers
// (the engine's report goroutine, the stats ticker, the SIGHUP handler)
// under one lock. A failed marshal or write invokes onDrop and the
// record is lost — the process never dies over a sick sink, but the
// drop is counted, not just logged.
type jsonlWriter struct {
	mu     sync.Mutex
	w      io.Writer
	onDrop func(what string, err error)
}

func newJSONLWriter(w io.Writer, onDrop func(what string, err error)) *jsonlWriter {
	return &jsonlWriter{w: w, onDrop: onDrop}
}

// write appends v as one JSON line. A nil writer (no -jsonl sink) is a
// no-op; what names the record kind for the drop report.
func (jw *jsonlWriter) write(v any, what string) {
	if jw == nil || jw.w == nil {
		return
	}
	line, err := json.Marshal(v)
	if err == nil {
		jw.mu.Lock()
		_, err = fmt.Fprintf(jw.w, "%s\n", line)
		jw.mu.Unlock()
	}
	if err != nil && jw.onDrop != nil {
		jw.onDrop(what, err)
	}
}
