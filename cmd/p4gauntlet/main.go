// Command p4gauntlet runs the full bug-finding campaign over the seeded
// defect registry and prints the paper's evaluation artifacts: Table 1
// (input-class penetration), Table 2 (bug summary), Table 3 (locations),
// the §7 deep-dive statistics and the merge-week regression series.
//
// Fuzz mode is the continuous-integration usage the paper proposes
// (§7.1): a streaming, stage-parallel engine generates random programs —
// mixing fresh grammar generation with coverage-guided corpus mutation at
// -mutate-ratio — pushes each through the reference pipeline,
// interrogates every compilation with translation validation and
// symbolic-execution packet tests, fingerprints and deduplicates the
// findings, and auto-reduces each unique witness (§8's "we hope to
// automate this process"). A fixed -seed replays the entire run,
// mutation schedule included; -corpus persists the admitted seed pool
// across campaigns.
//
// Serve mode is the long-running deployment shape: fuzz mode with
// unbounded seeds by default, memory bounded by epoch rotation
// (-epoch-programs N retires the solver stack's term interner, simplify
// memo and verdict cache every N programs, at deterministic round
// boundaries), periodic JSONL stats (including per-epoch context
// bytes/entries) and a graceful SIGTERM/SIGINT drain: on signal the
// pipeline stops scheduling, in-flight stages wind down, the corpus is
// saved and a final stats record closes the stream.
//
// Serve is also crash-resilient. Stage watchdogs (-stage-timeout, on by
// default in serve) quarantine any program whose stage panics or stalls —
// the witness, stage, and symptom land in DIR/quarantine — and the oracle
// escalation ladder (-oracle-timeout) degrades over-budget verdicts to an
// explicit Unknown instead of wedging a worker. With -state DIR every
// finding is fsynced to an append-only journal before it is reported, and
// the corpus plus seed watermark are checkpointed atomically at fold
// boundaries; after a crash or kill -9, -resume DIR restores the corpus
// and watermark and pre-seeds deduplication from the journal, so the
// daemon continues where it stopped without re-reporting findings. SIGHUP
// forces a checkpoint and a stats flush without draining. The -inject-*
// flags drive the deterministic fault-injection harness used by the
// chaos-smoke CI job.
//
// With -http ADDR (fuzz and serve modes) the process serves an admin
// plane for live introspection: /metrics (Prometheus text format, with
// per-stage and per-solver-tier latency histograms), /statusz (JSON:
// stats, health, recent epochs, recent quarantines), /healthz (liveness
// keyed off round-fold progress — a wedged pipeline reports 503) and
// /debug/pprof/*. The listener drains gracefully when the run ends.
//
// Coordinator/worker mode shards a bounded campaign across processes:
// the coordinator (-mode coordinator -listen ADDR) partitions the seed
// stream into work leases, each worker (-mode worker -connect ADDR) runs
// the unchanged streaming engine over its leases, and the coordinator
// merges results in canonical lease order with fleet-wide fingerprint
// dedup — so for a fixed -seeds budget the fleet's findings, witnesses
// and report order are identical to a single-process run at any worker
// count. Leases held by lost or hung workers expire and re-issue;
// -fleet N forks N local workers for one-command scale-out; -state /
// -resume give the coordinator the same journal/checkpoint crash
// resilience as serve mode. Fleet campaigns are pure-generation
// (-mutate-ratio must be 0): lease replay must not depend on cross-lease
// corpus state.
//
// Usage:
//
//	p4gauntlet [-mode campaign|levels|fuzz|serve|coordinator|worker]
//	           [-seeds N] [-workers N]
//	           [-duration D] [-backend v1model|tna] [-jsonl FILE]
//	           [-packets] [-reduce] [-reduce-workers N] [-start N] [-seed N]
//	           [-mutate-ratio F] [-corpus DIR] [-stats-interval D]
//	           [-epoch-programs N] [-state DIR | -resume DIR]
//	           [-checkpoint-programs N] [-stage-timeout D]
//	           [-oracle-timeout D] [-http ADDR] [-inject-every N]
//	           [-inject-seed N] [-inject-stages LIST] [-inject-stall D]
//	           [-listen ADDR] [-connect ADDR] [-fleet N] [-lease-slots N]
//	           [-lease-timeout D] [-worker-name NAME] [-defects LIST]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/core"
	"gauntlet/internal/corpus"
	"gauntlet/internal/faultinject"
	"gauntlet/internal/generator"
	"gauntlet/internal/obs"
	"gauntlet/internal/persist"
)

func main() {
	mode := flag.String("mode", "campaign", "campaign | levels | fuzz | serve")
	seeds := flag.Int64("seeds", 50, "random programs (fuzz mode, 0 = unbounded; serve mode defaults to 0) / samples per class (levels mode)")
	start := flag.Int64("start", 0, "first generator seed (fuzz mode)")
	seed := flag.Int64("seed", 0, "master schedule seed (fuzz mode): the same -seed replays the whole run, mutation schedule included")
	workers := flag.Int("workers", 0, "per-stage worker pool size (fuzz mode, 0 = GOMAXPROCS)")
	duration := flag.Duration("duration", 0, "wall-clock budget (fuzz mode, 0 = until seeds are exhausted)")
	backend := flag.String("backend", "v1model", "generator/pipeline backend: v1model | tna")
	jsonl := flag.String("jsonl", "", "append unique findings as JSON lines to FILE (\"-\" = stdout)")
	packets := flag.Bool("packets", true, "run symbolic-execution packet tests in addition to translation validation")
	concolic := flag.Bool("concolic", true, "bit-parallel concrete falsification under every equivalence query plus trace-steered test enumeration; -concolic=false sends every verdict straight to the solver (bisection / invariance checking)")
	doReduce := flag.Bool("reduce", true, "auto-reduce each unique finding's witness")
	reduceWorkers := flag.Int("reduce-workers", 0, "speculative reduction window: candidates probed concurrently per finding (0 = -workers; the reduced witnesses are byte-identical at any value)")
	mutateRatio := flag.Float64("mutate-ratio", 0.5, "fraction of programs drawn by mutating corpus seeds (fuzz mode, 0 = pure grammar generation)")
	corpusDir := flag.String("corpus", "", "corpus directory: load seeds before the run and save the admitted corpus after (fuzz mode)")
	statsInterval := flag.Duration("stats-interval", 0, "emit a periodic stats record to -jsonl every D (fuzz/serve mode; serve defaults to 30s, fuzz to final record only)")
	epochPrograms := flag.Int("epoch-programs", 0, "rotate the solver context + caches every N programs, bounding per-epoch memory (serve mode defaults to 4096; 0 in fuzz mode = never)")
	stateDir := flag.String("state", "", "durable state directory (fuzz/serve mode): fsynced findings journal, periodic atomic checkpoints and quarantine records")
	resumeDir := flag.String("resume", "", "resume a killed campaign from the durable state in DIR (implies -state DIR): restores the corpus and seed watermark from the checkpoint and pre-seeds dedup from the journal so reprocessed slots are never re-reported")
	checkpointPrograms := flag.Int("checkpoint-programs", 0, "checkpoint cadence in folded programs (needs -state; 0 = every epoch, or every 256 programs when epochs are off)")
	stageTimeout := flag.Duration("stage-timeout", 0, "per-program stall budget for each pipeline stage: a stage body exceeding it is abandoned and the program quarantined (serve mode defaults to 30s; 0 disables the watchdog)")
	oracleTimeout := flag.Duration("oracle-timeout", 0, "wall-clock budget for one program's oracle inspection: on expiry the ladder retries once at doubled budgets, then degrades the verdict to Unknown (0 disables)")
	httpAddr := flag.String("http", "", "serve the admin/introspection endpoints (/metrics, /statusz, /healthz, /debug/pprof) on ADDR (fuzz/serve mode; e.g. 127.0.0.1:8080, \"\" disables)")
	injectEvery := flag.Int64("inject-every", 0, "fault injection for resilience testing: deterministically fault ~1/N units per stage (0 disables)")
	injectSeed := flag.Int64("inject-seed", 1, "fault-injection plan seed (with -inject-every)")
	injectStages := flag.String("inject-stages", "generate,compile,oracle,reduce", "comma-separated stages to inject into (with -inject-every)")
	injectStall := flag.Duration("inject-stall", 5*time.Second, "injected stall duration (with -inject-every); set above -stage-timeout to exercise abandonment")
	listen := flag.String("listen", "", "coordinator mode: accept worker connections on ADDR (host:port, or a socket path containing '/')")
	connect := flag.String("connect", "", "worker mode: dial the coordinator at ADDR (retrying while it boots)")
	fleetN := flag.Int("fleet", 0, "coordinator mode: fork N local worker processes of this binary against -listen (0 = external workers only)")
	leaseSlots := flag.Int64("lease-slots", 0, "coordinator mode: seeds per work lease; must be a multiple of the engine sync interval (0 = 4 sync intervals)")
	leaseTimeout := flag.Duration("lease-timeout", 0, "coordinator mode: re-issue a lease not completed within D — set above a lease's worst-case wall clock (0 = 2m)")
	workerName := flag.String("worker-name", "", "worker mode: name for logs and per-worker metrics (default worker-PID)")
	defects := flag.String("defects", "", "comma-separated bug registry IDs to instrument into the pipeline (fuzz/coordinator mode; the CI smoke harness's known-defect seeding)")
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	ff := fuzzFlags{
		seeds: *seeds, start: *start, seed: *seed, workers: *workers, duration: *duration,
		backend: *backend, jsonl: *jsonl, packets: *packets, reduce: *doReduce, concolic: *concolic,
		reduceWorkers: *reduceWorkers,
		mutateRatio: *mutateRatio, corpusDir: *corpusDir, statsInterval: *statsInterval,
		epochPrograms: *epochPrograms,
		stateDir:      *stateDir, resumeDir: *resumeDir, checkpointPrograms: *checkpointPrograms,
		stageTimeout: *stageTimeout, oracleTimeout: *oracleTimeout,
		httpAddr:    *httpAddr,
		injectEvery: *injectEvery, injectSeed: *injectSeed,
		injectStages: *injectStages, injectStall: *injectStall,
		defects:  *defects,
		explicit: explicit,
	}
	fl := fleetFlags{
		listen: *listen, connect: *connect, forkWorkers: *fleetN,
		leaseSlots: *leaseSlots, leaseTimeout: *leaseTimeout, workerName: *workerName,
	}

	switch *mode {
	case "campaign":
		campaign()
	case "levels":
		fmt.Print(core.RunLevelStudy(int(*seeds)).Render())
	case "coordinator":
		coordinatorMain(ff, fl)
	case "worker":
		workerMain(fl)
	case "fuzz", "serve":
		if *mode == "serve" {
			// Serve is fuzz shaped for multi-day runs: unbounded seed
			// stream, bounded memory, observable by default.
			ff.serve = true
			if !explicit["seeds"] {
				ff.seeds = 0
			}
			if !explicit["epoch-programs"] {
				ff.epochPrograms = 4096
			}
			if !explicit["stats-interval"] {
				ff.statsInterval = 30 * time.Second
			}
			if !explicit["jsonl"] {
				// Observable by default: without an explicit sink the
				// periodic stats, epoch and finding records stream to
				// stdout — a multi-day run must never be silent until
				// its final summary.
				ff.jsonl = "-"
			}
			if !explicit["stage-timeout"] {
				// A multi-day run must survive a single pathological
				// program: watchdog on by default.
				ff.stageTimeout = 30 * time.Second
			}
			if ff.epochPrograms <= 0 {
				fmt.Fprintln(os.Stderr, "p4gauntlet: serve mode requires -epoch-programs > 0 (memory would grow unbounded)")
				os.Exit(2)
			}
		}
		fuzz(ff)
	default:
		fmt.Fprintf(os.Stderr, "p4gauntlet: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// campaign hunts all 91 filed bugs and prints the tables.
func campaign() {
	c := core.NewCampaign()
	fmt.Printf("hunting %d filed bugs (%d confirmed) across P4C, BMv2 and Tofino...\n\n",
		len(c.Registry.Bugs), len(c.Registry.Confirmed()))
	dets, err := c.RunAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4gauntlet: %v\n", err)
		os.Exit(1)
	}
	rep := core.NewReport(c.Registry, dets)
	fmt.Println(rep.Table2())
	fmt.Println(rep.Table3())
	fmt.Println(rep.DeepDive())
	fmt.Println(rep.MergeWeekSeries())
	if missed := rep.Missed(); len(missed) > 0 {
		fmt.Println("MISSED confirmed bugs:")
		for _, m := range missed {
			fmt.Println("  ", m)
		}
		os.Exit(1)
	}
	fmt.Println("all confirmed bugs detected.")
}

type fuzzFlags struct {
	seeds, start, seed int64
	workers            int
	duration           time.Duration
	backend            string
	jsonl              string
	packets            bool
	reduce             bool
	reduceWorkers      int
	concolic           bool
	mutateRatio        float64
	corpusDir          string
	statsInterval      time.Duration
	epochPrograms      int
	serve              bool
	stateDir           string
	resumeDir          string
	checkpointPrograms int
	stageTimeout       time.Duration
	oracleTimeout      time.Duration
	httpAddr           string
	injectEvery        int64
	injectSeed         int64
	injectStages       string
	injectStall        time.Duration
	defects            string
	explicit           map[string]bool
}

// statuszPayload is the /statusz JSON document: one self-describing
// snapshot of a live daemon — stats (corpus summary included), health,
// and bounded rings of recent epoch retirements and quarantines.
type statuszPayload struct {
	Mode       string                  `json:"mode"`
	PID        int                     `json:"pid"`
	Started    time.Time               `json:"started"`
	Now        time.Time               `json:"now"`
	Health     core.Health             `json:"health"`
	Stats      core.Stats              `json:"stats"`
	Epochs     []core.EpochStats       `json:"epochs,omitempty"`
	Quarantine []core.QuarantineRecord `json:"quarantine,omitempty"`
}

// fuzz drives the streaming engine: the long-running bug-hunting service
// the paper's CI proposal asks for, as a thin wrapper over core.Engine
// plus the corpus directory and JSONL observability plumbing.
func fuzz(ff fuzzFlags) {
	cfg := core.DefaultEngineConfig()
	cfg.StartSeed = ff.start
	cfg.Seeds = ff.seeds
	cfg.Seed = ff.seed
	cfg.Workers = ff.workers
	cfg.PacketTests = ff.packets
	cfg.Reduce = ff.reduce
	cfg.ReduceOpts.Parallelism = ff.reduceWorkers
	cfg.ConcolicOff = !ff.concolic
	cfg.MutateRatio = ff.mutateRatio
	cfg.EpochPrograms = ff.epochPrograms
	switch ff.backend {
	case "v1model":
		cfg.Backend = generator.V1Model
	case "tna":
		cfg.Backend = generator.TNA
	default:
		fmt.Fprintf(os.Stderr, "p4gauntlet: unknown backend %q (want v1model or tna)\n", ff.backend)
		os.Exit(2)
	}
	// -defects instruments registry bugs into the pipeline — the same
	// known-defect seeding the fleet smoke harness uses, so a
	// single-process baseline run is directly comparable to a fleet run.
	if ff.defects != "" {
		reg := bugs.Load()
		var active []*bugs.Bug
		for _, id := range splitDefects(ff.defects) {
			b := reg.ByID(id)
			if b == nil {
				fmt.Fprintf(os.Stderr, "p4gauntlet: -defects: registry has no bug %q\n", id)
				os.Exit(2)
			}
			active = append(active, b)
		}
		cfg.Passes = bugs.Instrument(compiler.DefaultPasses(), active)
	}
	if ff.corpusDir != "" {
		c := corpus.New(0)
		if n, err := c.Load(ff.corpusDir); err == nil {
			fmt.Fprintf(os.Stderr, "corpus: loaded %d seeds from %s\n", n, ff.corpusDir)
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "p4gauntlet: corpus load: %v\n", err)
			os.Exit(1)
		}
		cfg.Corpus = c
	}

	var sink io.Writer
	// human carries the progress lines (findings, epoch retirements,
	// summary). When the JSONL stream owns stdout, they move to stderr so
	// `p4gauntlet -mode serve | jq .` stays parseable.
	human := io.Writer(os.Stdout)
	switch ff.jsonl {
	case "":
	case "-":
		sink = os.Stdout
		human = os.Stderr
	default:
		f, err := os.OpenFile(ff.jsonl, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	// The engine is declared here (assigned after configuration below) so
	// the JSONL drop path can count lost records on it.
	var engine *core.Engine
	// Findings stream from the engine's report goroutine and stats records
	// from the ticker below, so JSONL lines share one locked writer. A
	// failed write is counted (Stats.RecordsDropped, /statusz) as well as
	// logged — a long-lived daemon's sick sink must be visible to a
	// scraper, not only to whoever tails stderr.
	jw := newJSONLWriter(sink, func(what string, err error) {
		if engine != nil {
			engine.NoteDroppedRecord()
		}
		fmt.Fprintf(os.Stderr, "p4gauntlet: jsonl %s record lost: %v\n", what, err)
	})
	writeJSONL := jw.write
	// statsRecord is the self-describing stats line: periodic records
	// (Final=false) make long campaigns observable mid-flight; the final
	// record closes the stream.
	type statsRecord struct {
		Stats core.Stats `json:"stats"`
		Final bool       `json:"final"`
	}
	// epochRecord marks one context rotation: the retiring epoch's
	// interner/cache bytes and counters, so a JSONL stream shows the
	// memory plateau epoch by epoch.
	type epochRecord struct {
		Epoch core.EpochStats `json:"epoch"`
	}
	cfg.OnEpoch = func(es core.EpochStats) {
		fmt.Fprintf(human, "epoch %d retired: %d programs, %d terms (~%.1f MiB), simp %d entries, verdicts %d\n",
			es.Index, es.Programs, es.Context.Interner.Entries,
			float64(es.Context.Interner.BytesEstimate)/(1<<20),
			es.Context.Simp.Entries, es.Cache.VerdictHits+es.Cache.VerdictMisses)
		writeJSONL(epochRecord{Epoch: es}, fmt.Sprintf("epoch %d", es.Index))
	}
	cfg.OnFinding = func(f core.Finding) {
		fmt.Fprintf(human, "seed %d: %s", f.Seed, f.Kind)
		if f.Pass != "" {
			fmt.Fprintf(human, " in %s", f.Pass)
		}
		if f.Origin == "mutate" {
			fmt.Fprintf(human, " [mutant]")
		}
		if f.SizeBefore != f.SizeAfter {
			fmt.Fprintf(human, " (witness reduced %d -> %d stmts)", f.SizeBefore, f.SizeAfter)
		}
		fmt.Fprintf(human, ": %s\n", f.Detail)
		writeJSONL(f, fmt.Sprintf("finding (seed %d)", f.Seed))
	}
	cfg.OnOracleError = func(seed int64, err error) {
		fmt.Fprintf(os.Stderr, "seed %d: tool limitation: %v\n", seed, err)
	}
	cfg.OnQuarantine = func(rec core.QuarantineRecord) {
		fmt.Fprintf(os.Stderr, "seed %d: quarantined at %s stage (%s): %s\n",
			rec.Seed, rec.Stage, rec.Kind, rec.Symptom)
	}
	cfg.StageTimeout = ff.stageTimeout
	cfg.OracleTimeout = ff.oracleTimeout

	// Admin/introspection plane (-http): a metrics registry feeds
	// /metrics, and bounded rings of recent epoch retirements and
	// quarantine records feed /statusz. The rings wrap the base callbacks
	// here so later wrappers (the persist layer's) compose on top.
	var reg *obs.Registry
	var introMu sync.Mutex
	var recentEpochs []core.EpochStats
	var recentQuarantine []core.QuarantineRecord
	if ff.httpAddr != "" {
		reg = obs.NewRegistry()
		cfg.Obs = reg
		const keepRecent = 64
		prevEpoch := cfg.OnEpoch
		cfg.OnEpoch = func(es core.EpochStats) {
			introMu.Lock()
			recentEpochs = append(recentEpochs, es)
			if len(recentEpochs) > keepRecent {
				recentEpochs = recentEpochs[len(recentEpochs)-keepRecent:]
			}
			introMu.Unlock()
			prevEpoch(es)
		}
		prevQuar := cfg.OnQuarantine
		cfg.OnQuarantine = func(rec core.QuarantineRecord) {
			introMu.Lock()
			recentQuarantine = append(recentQuarantine, rec)
			if len(recentQuarantine) > keepRecent {
				recentQuarantine = recentQuarantine[len(recentQuarantine)-keepRecent:]
			}
			introMu.Unlock()
			prevQuar(rec)
		}
	}

	// Deterministic fault injection (resilience testing): the chaos-smoke
	// harness runs serve with -inject-every and asserts that every fired
	// fault became a quarantine record or tool-error count, never a death.
	if ff.injectEvery > 0 {
		plan := &faultinject.Plan{Seed: ff.injectSeed, Stages: map[string]faultinject.Spec{}}
		for _, stage := range strings.Split(ff.injectStages, ",") {
			stage = strings.TrimSpace(stage)
			if stage == "" {
				continue
			}
			plan.Stages[stage] = faultinject.Spec{Every: ff.injectEvery, StallFor: ff.injectStall}
		}
		cfg.FaultHook = plan.Hook()
		defer func() {
			p, s, e := plan.Fired()
			fmt.Fprintf(os.Stderr, "faultinject: fired %d panics, %d stalls, %d errors\n", p, s, e)
		}()
	}

	// Durable state: write-ahead findings journal, periodic atomic
	// checkpoints at fold boundaries, quarantine records on disk. With
	// -resume, restore the dead incarnation's corpus + watermark and
	// pre-seed dedup from its journal.
	var st *persist.State
	baseTotals := persist.Totals{}
	baseEpoch := 0
	epochsThisRun := 0
	dir := ff.stateDir
	if ff.resumeDir != "" {
		if dir != "" && dir != ff.resumeDir {
			fmt.Fprintln(os.Stderr, "p4gauntlet: -state and -resume point at different directories")
			os.Exit(2)
		}
		dir = ff.resumeDir
	}
	if dir != "" {
		var err error
		st, err = persist.Open(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: state: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		if ff.resumeDir != "" {
			cp, err := st.LoadCheckpoint()
			if err != nil {
				fmt.Fprintf(os.Stderr, "p4gauntlet: resume: %v\n", err)
				os.Exit(1)
			}
			if cp != nil {
				// The corpus and watermark are functions of the schedule:
				// refuse explicit flags that contradict the checkpoint,
				// adopt its values otherwise.
				if ff.explicit["seed"] && cfg.Seed != cp.Seed {
					fmt.Fprintf(os.Stderr, "p4gauntlet: resume: -seed %d contradicts checkpoint seed %d\n", cfg.Seed, cp.Seed)
					os.Exit(2)
				}
				if ff.explicit["mutate-ratio"] && cfg.MutateRatio != cp.MutateRatio {
					fmt.Fprintf(os.Stderr, "p4gauntlet: resume: -mutate-ratio %g contradicts checkpoint %g\n", cfg.MutateRatio, cp.MutateRatio)
					os.Exit(2)
				}
				cfg.Seed = cp.Seed
				cfg.MutateRatio = cp.MutateRatio
				cfg.StartSeed = cp.NextSlot
				baseTotals = cp.Totals
				baseEpoch = cp.Epoch
				if cp.Corpus != nil {
					c, err := corpus.FromSnapshot(cp.Corpus)
					if err != nil {
						fmt.Fprintf(os.Stderr, "p4gauntlet: resume: corpus: %v\n", err)
						os.Exit(1)
					}
					cfg.Corpus = c
				}
			}
			known, nrec, err := st.KnownFindings()
			if err != nil {
				fmt.Fprintf(os.Stderr, "p4gauntlet: resume: journal: %v\n", err)
				os.Exit(1)
			}
			cfg.KnownFindings = known
			fmt.Fprintf(os.Stderr, "resume: watermark slot %d, %d journaled findings pre-seeding dedup\n",
				cfg.StartSeed, nrec)
		}
		// Write-ahead discipline: a finding hits the fsynced journal
		// before it is streamed anywhere else, so anything the user ever
		// saw survives a crash.
		stream := cfg.OnFinding
		cfg.OnFinding = func(f core.Finding) {
			if err := st.AppendFinding(f); err != nil {
				fmt.Fprintf(os.Stderr, "p4gauntlet: journal: %v\n", err)
			}
			stream(f)
		}
		warn := cfg.OnQuarantine
		cfg.OnQuarantine = func(rec core.QuarantineRecord) {
			warn(rec)
			if err := st.WriteQuarantine(rec); err != nil {
				fmt.Fprintf(os.Stderr, "p4gauntlet: quarantine record: %v\n", err)
			}
		}
		cfg.CheckpointPrograms = ff.checkpointPrograms
		if cfg.CheckpointPrograms <= 0 {
			if ff.epochPrograms > 0 {
				cfg.CheckpointPrograms = ff.epochPrograms
			} else {
				cfg.CheckpointPrograms = 256
			}
		}
		cfg.OnCheckpoint = func(next int64) {
			totals := baseTotals
			s := engine.Stats()
			totals.Add(persist.Totals{
				Programs:        s.Generated,
				Findings:        s.UniqueFindings,
				Duplicates:      s.Duplicates,
				ToolErrors:      s.CompileErrors + s.OracleErrors,
				Quarantined:     s.Quarantined,
				Timeouts:        s.Timeouts,
				UnknownVerdicts: s.UnknownVerdicts,
				Epochs:          epochsThisRun,
			})
			err := st.SaveCheckpoint(&persist.Checkpoint{
				NextSlot:    next,
				Seed:        cfg.Seed,
				MutateRatio: cfg.MutateRatio,
				Corpus:      engine.Corpus().Snapshot(),
				Totals:      totals,
				Epoch:       baseEpoch + epochsThisRun,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "p4gauntlet: checkpoint: %v\n", err)
			}
		}
		// OnEpoch and OnCheckpoint both run on the engine's collector
		// goroutine, so the plain counter is race-free.
		epochStream := cfg.OnEpoch
		cfg.OnEpoch = func(es core.EpochStats) {
			epochsThisRun++
			epochStream(es)
		}
	}

	// SIGTERM (the orchestrator's stop signal) and SIGINT both drain
	// gracefully: cancellation stops the scheduler, the stages wind down,
	// and the corpus/final stats still get written below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if ff.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ff.duration)
		defer cancel()
	}

	engine = core.NewEngine(cfg)

	// Start the admin server once the engine exists (its Health/Status
	// hooks read it). Binding eagerly means a bad -http address fails the
	// run at startup, not at first scrape.
	var admin *obs.Admin
	if ff.httpAddr != "" {
		// Liveness window: the collector folds a round every SyncInterval
		// programs, so a healthy pipeline folds continuously. Five minutes
		// (or four stats intervals, whichever is larger) without fold
		// progress on a running engine reports unhealthy.
		window := 5 * time.Minute
		if w := 4 * ff.statsInterval; w > window {
			window = w
		}
		modeName := "fuzz"
		if ff.serve {
			modeName = "serve"
		}
		started := time.Now()
		var err error
		admin, err = obs.StartAdmin(ff.httpAddr, obs.AdminConfig{
			Metrics: reg,
			Health: func() error {
				h := engine.Health()
				if !h.Running {
					return nil
				}
				if since := time.Since(h.LastProgress); since > window {
					return fmt.Errorf("no round-fold progress for %s (%d programs folded)",
						since.Round(time.Second), h.ProgramsFolded)
				}
				return nil
			},
			Status: func() any {
				introMu.Lock()
				eps := append([]core.EpochStats(nil), recentEpochs...)
				qs := append([]core.QuarantineRecord(nil), recentQuarantine...)
				introMu.Unlock()
				return statuszPayload{
					Mode: modeName, PID: os.Getpid(),
					Started: started, Now: time.Now(),
					Health: engine.Health(), Stats: engine.Stats(),
					Epochs: eps, Quarantine: qs,
				}
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "admin: serving /metrics /statusz /healthz /debug/pprof on http://%s\n", admin.Addr())
	}

	// SIGHUP means "checkpoint and flush stats now" — no drain, no pause:
	// the flag is read by the collector at its next fold boundary and the
	// run carries on. Ops can snapshot a multi-day serve at will.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	hupDone := make(chan struct{})
	go func() {
		for {
			select {
			case <-hupDone:
				return
			case <-hup:
				engine.RequestCheckpoint()
				s := engine.Stats()
				writeJSONL(statsRecord{Stats: s}, "stats")
				fmt.Fprintln(os.Stderr, "SIGHUP: checkpoint requested, stats flushed")
				// One-line human summary on stderr: operators without a
				// JSONL tail get the same signal.
				fmt.Fprintln(os.Stderr, "SIGHUP: "+s.OneLine())
			}
		}
	}()
	tickerDone := make(chan struct{})
	if sink != nil && ff.statsInterval > 0 {
		go func() {
			tick := time.NewTicker(ff.statsInterval)
			defer tick.Stop()
			for {
				select {
				case <-tickerDone:
					return
				case <-tick.C:
					writeJSONL(statsRecord{Stats: engine.Stats()}, "stats")
				}
			}
		}()
	}
	findings := engine.Run(ctx)
	close(hupDone)
	close(tickerDone)
	stats := engine.Stats()
	fmt.Fprintf(human, "\n%s\n", stats.Summary())
	// Final run record: one JSON line with the full stats snapshot
	// (throughput, corpus/admission counters, cache hit rates,
	// simplification/gate-reuse counters, interner growth), so a JSONL
	// stream is self-describing without scraping the human summary.
	writeJSONL(statsRecord{Stats: stats, Final: true}, "stats")
	// Drain the admin listener after the final records: a scraper racing
	// the shutdown sees either live data or a closed port, never a
	// half-dead server.
	if admin != nil {
		sdCtx, sdCancel := context.WithTimeout(context.Background(), 3*time.Second)
		if err := admin.Shutdown(sdCtx); err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: admin shutdown: %v\n", err)
		}
		sdCancel()
	}
	if ff.corpusDir != "" {
		if n, err := engine.Corpus().Save(ff.corpusDir); err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: corpus save: %v\n", err)
		} else {
			fmt.Fprintf(human, "corpus: saved %d seeds to %s\n", n, ff.corpusDir)
		}
	}
	// A drained serve run exits 0: findings were already streamed and a
	// service stopping on SIGTERM is not a failure. Bounded fuzz runs
	// keep the CI contract (nonzero on findings).
	if len(findings) > 0 && !ff.serve {
		os.Exit(1)
	}
}
