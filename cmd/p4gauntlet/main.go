// Command p4gauntlet runs the full bug-finding campaign over the seeded
// defect registry and prints the paper's evaluation artifacts: Table 1
// (input-class penetration), Table 2 (bug summary), Table 3 (locations),
// the §7 deep-dive statistics and the merge-week regression series.
//
// Usage:
//
//	p4gauntlet [-mode campaign|levels|fuzz] [-seeds N]
package main

import (
	"flag"
	"fmt"
	"os"

	"gauntlet/internal/compiler"
	"gauntlet/internal/core"
	"gauntlet/internal/generator"
	"gauntlet/internal/validate"
)

func main() {
	mode := flag.String("mode", "campaign", "campaign | levels | fuzz")
	seeds := flag.Int("seeds", 50, "random programs (fuzz mode) / samples per class (levels mode)")
	flag.Parse()

	switch *mode {
	case "campaign":
		campaign()
	case "levels":
		fmt.Print(core.RunLevelStudy(*seeds).Render())
	case "fuzz":
		fuzz(*seeds)
	default:
		fmt.Fprintf(os.Stderr, "p4gauntlet: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// campaign hunts all 91 filed bugs and prints the tables.
func campaign() {
	c := core.NewCampaign()
	fmt.Printf("hunting %d filed bugs (%d confirmed) across P4C, BMv2 and Tofino...\n\n",
		len(c.Registry.Bugs), len(c.Registry.Confirmed()))
	dets, err := c.RunAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4gauntlet: %v\n", err)
		os.Exit(1)
	}
	rep := core.NewReport(c.Registry, dets)
	fmt.Println(rep.Table2())
	fmt.Println(rep.Table3())
	fmt.Println(rep.DeepDive())
	fmt.Println(rep.MergeWeekSeries())
	if missed := rep.Missed(); len(missed) > 0 {
		fmt.Println("MISSED confirmed bugs:")
		for _, m := range missed {
			fmt.Println("  ", m)
		}
		os.Exit(1)
	}
	fmt.Println("all confirmed bugs detected.")
}

// fuzz runs the reference (defect-free) pipeline over random programs
// with translation validation — the continuous-integration usage the
// paper proposes ("we believe it would be useful for the P4 compiler
// developers to use it as a continuous integration tool", §7.1).
func fuzz(seeds int) {
	comp := compiler.New(compiler.DefaultPasses()...)
	crashes, miscompiles, clean := 0, 0, 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		res, err := comp.Compile(prog)
		if err != nil {
			crashes++
			fmt.Printf("seed %d: %v\n", seed, err)
			continue
		}
		verdicts, err := validate.Snapshots(res, validate.Options{MaxConflicts: 20000})
		if err != nil {
			fmt.Printf("seed %d: interpreter limitation: %v\n", seed, err)
			continue
		}
		if fails := validate.Failures(verdicts); len(fails) > 0 {
			miscompiles++
			fmt.Printf("seed %d: MISCOMPILATION %s\n", seed, fails[0])
			continue
		}
		clean++
	}
	fmt.Printf("\n%d programs: %d clean, %d crashes, %d miscompilations\n",
		seeds, clean, crashes, miscompiles)
	if crashes+miscompiles > 0 {
		os.Exit(1)
	}
}
