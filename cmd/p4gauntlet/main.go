// Command p4gauntlet runs the full bug-finding campaign over the seeded
// defect registry and prints the paper's evaluation artifacts: Table 1
// (input-class penetration), Table 2 (bug summary), Table 3 (locations),
// the §7 deep-dive statistics and the merge-week regression series.
//
// Fuzz mode is the continuous-integration usage the paper proposes
// (§7.1): a streaming, stage-parallel engine generates random programs,
// pushes each through the reference pipeline, interrogates every
// compilation with translation validation and symbolic-execution packet
// tests, fingerprints and deduplicates the findings, and auto-reduces
// each unique witness (§8's "we hope to automate this process").
//
// Usage:
//
//	p4gauntlet [-mode campaign|levels|fuzz] [-seeds N] [-workers N]
//	           [-duration D] [-backend v1model|tna] [-jsonl FILE]
//	           [-packets] [-reduce] [-start N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"gauntlet/internal/core"
	"gauntlet/internal/generator"
)

func main() {
	mode := flag.String("mode", "campaign", "campaign | levels | fuzz")
	seeds := flag.Int64("seeds", 50, "random programs (fuzz mode, 0 = unbounded) / samples per class (levels mode)")
	start := flag.Int64("start", 0, "first generator seed (fuzz mode)")
	workers := flag.Int("workers", 0, "per-stage worker pool size (fuzz mode, 0 = GOMAXPROCS)")
	duration := flag.Duration("duration", 0, "wall-clock budget (fuzz mode, 0 = until seeds are exhausted)")
	backend := flag.String("backend", "v1model", "generator/pipeline backend: v1model | tna")
	jsonl := flag.String("jsonl", "", "append unique findings as JSON lines to FILE (\"-\" = stdout)")
	packets := flag.Bool("packets", true, "run symbolic-execution packet tests in addition to translation validation")
	doReduce := flag.Bool("reduce", true, "auto-reduce each unique finding's witness")
	flag.Parse()

	switch *mode {
	case "campaign":
		campaign()
	case "levels":
		fmt.Print(core.RunLevelStudy(int(*seeds)).Render())
	case "fuzz":
		fuzz(fuzzFlags{
			seeds: *seeds, start: *start, workers: *workers, duration: *duration,
			backend: *backend, jsonl: *jsonl, packets: *packets, reduce: *doReduce,
		})
	default:
		fmt.Fprintf(os.Stderr, "p4gauntlet: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// campaign hunts all 91 filed bugs and prints the tables.
func campaign() {
	c := core.NewCampaign()
	fmt.Printf("hunting %d filed bugs (%d confirmed) across P4C, BMv2 and Tofino...\n\n",
		len(c.Registry.Bugs), len(c.Registry.Confirmed()))
	dets, err := c.RunAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4gauntlet: %v\n", err)
		os.Exit(1)
	}
	rep := core.NewReport(c.Registry, dets)
	fmt.Println(rep.Table2())
	fmt.Println(rep.Table3())
	fmt.Println(rep.DeepDive())
	fmt.Println(rep.MergeWeekSeries())
	if missed := rep.Missed(); len(missed) > 0 {
		fmt.Println("MISSED confirmed bugs:")
		for _, m := range missed {
			fmt.Println("  ", m)
		}
		os.Exit(1)
	}
	fmt.Println("all confirmed bugs detected.")
}

type fuzzFlags struct {
	seeds, start int64
	workers      int
	duration     time.Duration
	backend      string
	jsonl        string
	packets      bool
	reduce       bool
}

// fuzz drives the streaming engine: the long-running bug-hunting service
// the paper's CI proposal asks for, as a thin wrapper over core.Engine.
func fuzz(ff fuzzFlags) {
	cfg := core.DefaultEngineConfig()
	cfg.StartSeed = ff.start
	cfg.Seeds = ff.seeds
	cfg.Workers = ff.workers
	cfg.PacketTests = ff.packets
	cfg.Reduce = ff.reduce
	switch ff.backend {
	case "v1model":
		cfg.Backend = generator.V1Model
	case "tna":
		cfg.Backend = generator.TNA
	default:
		fmt.Fprintf(os.Stderr, "p4gauntlet: unknown backend %q (want v1model or tna)\n", ff.backend)
		os.Exit(2)
	}

	var sink io.Writer
	switch ff.jsonl {
	case "":
	case "-":
		sink = os.Stdout
	default:
		f, err := os.OpenFile(ff.jsonl, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	cfg.OnFinding = func(f core.Finding) {
		fmt.Printf("seed %d: %s", f.Seed, f.Kind)
		if f.Pass != "" {
			fmt.Printf(" in %s", f.Pass)
		}
		if f.SizeBefore != f.SizeAfter {
			fmt.Printf(" (witness reduced %d -> %d stmts)", f.SizeBefore, f.SizeAfter)
		}
		fmt.Printf(": %s\n", f.Detail)
		if sink != nil {
			line, err := json.Marshal(f)
			if err == nil {
				_, err = fmt.Fprintf(sink, "%s\n", line)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "p4gauntlet: jsonl record for seed %d lost: %v\n", f.Seed, err)
			}
		}
	}
	cfg.OnOracleError = func(seed int64, err error) {
		fmt.Fprintf(os.Stderr, "seed %d: tool limitation: %v\n", seed, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if ff.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ff.duration)
		defer cancel()
	}

	engine := core.NewEngine(cfg)
	findings := engine.Run(ctx)
	stats := engine.Stats()
	fmt.Printf("\n%s\n", stats.Summary())
	if sink != nil {
		// Final run record: one JSON line with the full stats snapshot
		// (throughput, cache hit rates, simplification/gate-reuse counters,
		// interner growth), so a JSONL stream is self-describing without
		// scraping the human summary.
		line, err := json.Marshal(struct {
			Stats core.Stats `json:"stats"`
		}{stats})
		if err == nil {
			_, err = fmt.Fprintf(sink, "%s\n", line)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: jsonl stats record lost: %v\n", err)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
