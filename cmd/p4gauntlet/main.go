// Command p4gauntlet runs the full bug-finding campaign over the seeded
// defect registry and prints the paper's evaluation artifacts: Table 1
// (input-class penetration), Table 2 (bug summary), Table 3 (locations),
// the §7 deep-dive statistics and the merge-week regression series.
//
// Fuzz mode is the continuous-integration usage the paper proposes
// (§7.1): a streaming, stage-parallel engine generates random programs —
// mixing fresh grammar generation with coverage-guided corpus mutation at
// -mutate-ratio — pushes each through the reference pipeline,
// interrogates every compilation with translation validation and
// symbolic-execution packet tests, fingerprints and deduplicates the
// findings, and auto-reduces each unique witness (§8's "we hope to
// automate this process"). A fixed -seed replays the entire run,
// mutation schedule included; -corpus persists the admitted seed pool
// across campaigns.
//
// Serve mode is the long-running deployment shape: fuzz mode with
// unbounded seeds by default, memory bounded by epoch rotation
// (-epoch-programs N retires the solver stack's term interner, simplify
// memo and verdict cache every N programs, at deterministic round
// boundaries), periodic JSONL stats (including per-epoch context
// bytes/entries) and a graceful SIGTERM/SIGINT drain: on signal the
// pipeline stops scheduling, in-flight stages wind down, the corpus is
// saved and a final stats record closes the stream.
//
// Usage:
//
//	p4gauntlet [-mode campaign|levels|fuzz|serve] [-seeds N] [-workers N]
//	           [-duration D] [-backend v1model|tna] [-jsonl FILE]
//	           [-packets] [-reduce] [-start N] [-seed N]
//	           [-mutate-ratio F] [-corpus DIR] [-stats-interval D]
//	           [-epoch-programs N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"gauntlet/internal/core"
	"gauntlet/internal/corpus"
	"gauntlet/internal/generator"
)

func main() {
	mode := flag.String("mode", "campaign", "campaign | levels | fuzz | serve")
	seeds := flag.Int64("seeds", 50, "random programs (fuzz mode, 0 = unbounded; serve mode defaults to 0) / samples per class (levels mode)")
	start := flag.Int64("start", 0, "first generator seed (fuzz mode)")
	seed := flag.Int64("seed", 0, "master schedule seed (fuzz mode): the same -seed replays the whole run, mutation schedule included")
	workers := flag.Int("workers", 0, "per-stage worker pool size (fuzz mode, 0 = GOMAXPROCS)")
	duration := flag.Duration("duration", 0, "wall-clock budget (fuzz mode, 0 = until seeds are exhausted)")
	backend := flag.String("backend", "v1model", "generator/pipeline backend: v1model | tna")
	jsonl := flag.String("jsonl", "", "append unique findings as JSON lines to FILE (\"-\" = stdout)")
	packets := flag.Bool("packets", true, "run symbolic-execution packet tests in addition to translation validation")
	doReduce := flag.Bool("reduce", true, "auto-reduce each unique finding's witness")
	mutateRatio := flag.Float64("mutate-ratio", 0.5, "fraction of programs drawn by mutating corpus seeds (fuzz mode, 0 = pure grammar generation)")
	corpusDir := flag.String("corpus", "", "corpus directory: load seeds before the run and save the admitted corpus after (fuzz mode)")
	statsInterval := flag.Duration("stats-interval", 0, "emit a periodic stats record to -jsonl every D (fuzz/serve mode; serve defaults to 30s, fuzz to final record only)")
	epochPrograms := flag.Int("epoch-programs", 0, "rotate the solver context + caches every N programs, bounding per-epoch memory (serve mode defaults to 4096; 0 in fuzz mode = never)")
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	switch *mode {
	case "campaign":
		campaign()
	case "levels":
		fmt.Print(core.RunLevelStudy(int(*seeds)).Render())
	case "fuzz", "serve":
		ff := fuzzFlags{
			seeds: *seeds, start: *start, seed: *seed, workers: *workers, duration: *duration,
			backend: *backend, jsonl: *jsonl, packets: *packets, reduce: *doReduce,
			mutateRatio: *mutateRatio, corpusDir: *corpusDir, statsInterval: *statsInterval,
			epochPrograms: *epochPrograms,
		}
		if *mode == "serve" {
			// Serve is fuzz shaped for multi-day runs: unbounded seed
			// stream, bounded memory, observable by default.
			ff.serve = true
			if !explicit["seeds"] {
				ff.seeds = 0
			}
			if !explicit["epoch-programs"] {
				ff.epochPrograms = 4096
			}
			if !explicit["stats-interval"] {
				ff.statsInterval = 30 * time.Second
			}
			if !explicit["jsonl"] {
				// Observable by default: without an explicit sink the
				// periodic stats, epoch and finding records stream to
				// stdout — a multi-day run must never be silent until
				// its final summary.
				ff.jsonl = "-"
			}
			if ff.epochPrograms <= 0 {
				fmt.Fprintln(os.Stderr, "p4gauntlet: serve mode requires -epoch-programs > 0 (memory would grow unbounded)")
				os.Exit(2)
			}
		}
		fuzz(ff)
	default:
		fmt.Fprintf(os.Stderr, "p4gauntlet: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// campaign hunts all 91 filed bugs and prints the tables.
func campaign() {
	c := core.NewCampaign()
	fmt.Printf("hunting %d filed bugs (%d confirmed) across P4C, BMv2 and Tofino...\n\n",
		len(c.Registry.Bugs), len(c.Registry.Confirmed()))
	dets, err := c.RunAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4gauntlet: %v\n", err)
		os.Exit(1)
	}
	rep := core.NewReport(c.Registry, dets)
	fmt.Println(rep.Table2())
	fmt.Println(rep.Table3())
	fmt.Println(rep.DeepDive())
	fmt.Println(rep.MergeWeekSeries())
	if missed := rep.Missed(); len(missed) > 0 {
		fmt.Println("MISSED confirmed bugs:")
		for _, m := range missed {
			fmt.Println("  ", m)
		}
		os.Exit(1)
	}
	fmt.Println("all confirmed bugs detected.")
}

type fuzzFlags struct {
	seeds, start, seed int64
	workers            int
	duration           time.Duration
	backend            string
	jsonl              string
	packets            bool
	reduce             bool
	mutateRatio        float64
	corpusDir          string
	statsInterval      time.Duration
	epochPrograms      int
	serve              bool
}

// fuzz drives the streaming engine: the long-running bug-hunting service
// the paper's CI proposal asks for, as a thin wrapper over core.Engine
// plus the corpus directory and JSONL observability plumbing.
func fuzz(ff fuzzFlags) {
	cfg := core.DefaultEngineConfig()
	cfg.StartSeed = ff.start
	cfg.Seeds = ff.seeds
	cfg.Seed = ff.seed
	cfg.Workers = ff.workers
	cfg.PacketTests = ff.packets
	cfg.Reduce = ff.reduce
	cfg.MutateRatio = ff.mutateRatio
	cfg.EpochPrograms = ff.epochPrograms
	switch ff.backend {
	case "v1model":
		cfg.Backend = generator.V1Model
	case "tna":
		cfg.Backend = generator.TNA
	default:
		fmt.Fprintf(os.Stderr, "p4gauntlet: unknown backend %q (want v1model or tna)\n", ff.backend)
		os.Exit(2)
	}
	if ff.corpusDir != "" {
		c := corpus.New(0)
		if n, err := c.Load(ff.corpusDir); err == nil {
			fmt.Fprintf(os.Stderr, "corpus: loaded %d seeds from %s\n", n, ff.corpusDir)
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "p4gauntlet: corpus load: %v\n", err)
			os.Exit(1)
		}
		cfg.Corpus = c
	}

	var sink io.Writer
	// human carries the progress lines (findings, epoch retirements,
	// summary). When the JSONL stream owns stdout, they move to stderr so
	// `p4gauntlet -mode serve | jq .` stays parseable.
	human := io.Writer(os.Stdout)
	switch ff.jsonl {
	case "":
	case "-":
		sink = os.Stdout
		human = os.Stderr
	default:
		f, err := os.OpenFile(ff.jsonl, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	// Findings stream from the engine's report goroutine and stats records
	// from the ticker below, so JSONL lines need one writer lock.
	var sinkMu sync.Mutex
	writeJSONL := func(v any, what string) {
		if sink == nil {
			return
		}
		line, err := json.Marshal(v)
		if err == nil {
			sinkMu.Lock()
			_, err = fmt.Fprintf(sink, "%s\n", line)
			sinkMu.Unlock()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: jsonl %s record lost: %v\n", what, err)
		}
	}
	// statsRecord is the self-describing stats line: periodic records
	// (Final=false) make long campaigns observable mid-flight; the final
	// record closes the stream.
	type statsRecord struct {
		Stats core.Stats `json:"stats"`
		Final bool       `json:"final"`
	}
	// epochRecord marks one context rotation: the retiring epoch's
	// interner/cache bytes and counters, so a JSONL stream shows the
	// memory plateau epoch by epoch.
	type epochRecord struct {
		Epoch core.EpochStats `json:"epoch"`
	}
	cfg.OnEpoch = func(es core.EpochStats) {
		fmt.Fprintf(human, "epoch %d retired: %d programs, %d terms (~%.1f MiB), simp %d entries, verdicts %d\n",
			es.Index, es.Programs, es.Context.Interner.Entries,
			float64(es.Context.Interner.BytesEstimate)/(1<<20),
			es.Context.Simp.Entries, es.Cache.VerdictHits+es.Cache.VerdictMisses)
		writeJSONL(epochRecord{Epoch: es}, fmt.Sprintf("epoch %d", es.Index))
	}
	cfg.OnFinding = func(f core.Finding) {
		fmt.Fprintf(human, "seed %d: %s", f.Seed, f.Kind)
		if f.Pass != "" {
			fmt.Fprintf(human, " in %s", f.Pass)
		}
		if f.Origin == "mutate" {
			fmt.Fprintf(human, " [mutant]")
		}
		if f.SizeBefore != f.SizeAfter {
			fmt.Fprintf(human, " (witness reduced %d -> %d stmts)", f.SizeBefore, f.SizeAfter)
		}
		fmt.Fprintf(human, ": %s\n", f.Detail)
		writeJSONL(f, fmt.Sprintf("finding (seed %d)", f.Seed))
	}
	cfg.OnOracleError = func(seed int64, err error) {
		fmt.Fprintf(os.Stderr, "seed %d: tool limitation: %v\n", seed, err)
	}

	// SIGTERM (the orchestrator's stop signal) and SIGINT both drain
	// gracefully: cancellation stops the scheduler, the stages wind down,
	// and the corpus/final stats still get written below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if ff.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ff.duration)
		defer cancel()
	}

	engine := core.NewEngine(cfg)
	tickerDone := make(chan struct{})
	if sink != nil && ff.statsInterval > 0 {
		go func() {
			tick := time.NewTicker(ff.statsInterval)
			defer tick.Stop()
			for {
				select {
				case <-tickerDone:
					return
				case <-tick.C:
					writeJSONL(statsRecord{Stats: engine.Stats()}, "stats")
				}
			}
		}()
	}
	findings := engine.Run(ctx)
	close(tickerDone)
	stats := engine.Stats()
	fmt.Fprintf(human, "\n%s\n", stats.Summary())
	// Final run record: one JSON line with the full stats snapshot
	// (throughput, corpus/admission counters, cache hit rates,
	// simplification/gate-reuse counters, interner growth), so a JSONL
	// stream is self-describing without scraping the human summary.
	writeJSONL(statsRecord{Stats: stats, Final: true}, "stats")
	if ff.corpusDir != "" {
		if n, err := engine.Corpus().Save(ff.corpusDir); err != nil {
			fmt.Fprintf(os.Stderr, "p4gauntlet: corpus save: %v\n", err)
		} else {
			fmt.Fprintf(human, "corpus: saved %d seeds to %s\n", n, ff.corpusDir)
		}
	}
	// A drained serve run exits 0: findings were already streamed and a
	// service stopping on SIGTERM is not a failure. Bounded fuzz runs
	// keep the CI contract (nonzero on findings).
	if len(findings) > 0 && !ff.serve {
		os.Exit(1)
	}
}
