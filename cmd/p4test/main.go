// Command p4test compiles a P4 program through the reference front and
// mid end, optionally emitting the program after every pass that changed
// it (the instrumentation Gauntlet's translation validation consumes,
// §5.2) and optionally running translation validation across the
// snapshots.
//
// Usage:
//
//	p4test [-dump] [-validate] [-tofino] program.p4
package main

import (
	"flag"
	"fmt"
	"os"

	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/target/tofino"
	"gauntlet/internal/validate"
)

func main() {
	dump := flag.Bool("dump", false, "print the program after every pass that changed it")
	doValidate := flag.Bool("validate", false, "translation-validate consecutive snapshots")
	useTofino := flag.Bool("tofino", false, "append the Tofino back-end passes")
	maxConflicts := flag.Int("max-conflicts", 200000, "solver conflict budget per equivalence query")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: p4test [-dump] [-validate] program.p4")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := types.Check(prog); err != nil {
		fatal(err)
	}

	passes := compiler.DefaultPasses()
	if *useTofino {
		passes = append(passes, tofino.BackendPasses()...)
	}
	res, err := compiler.New(passes...).Compile(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4test: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("compiled: %d passes changed the program\n", len(res.Snapshots)-1)
	if *dump {
		for _, s := range res.Snapshots {
			fmt.Printf("// ======== after %s (hash %016x) ========\n%s\n", s.Pass, s.Hash, s.Text)
		}
	}
	if *doValidate {
		verdicts, err := validate.Snapshots(res, validate.Options{MaxConflicts: *maxConflicts})
		if err != nil {
			fatal(err)
		}
		fails := validate.Failures(verdicts)
		for _, v := range verdicts {
			fmt.Println(" ", v)
		}
		if len(fails) > 0 {
			fmt.Printf("MISCOMPILATION: %d failing pass transitions\n", len(fails))
			os.Exit(1)
		}
		fmt.Println("all passes preserve semantics")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "p4test: %v\n", err)
	os.Exit(1)
}
