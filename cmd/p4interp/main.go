// Command p4interp runs a P4 program's pipeline on a packet through the
// BMv2 software-switch simulator, or generates and runs symbolic test
// packets for it (§6).
//
// Usage:
//
//	p4interp -pkt 0807161718 program.p4       inject one packet (hex)
//	p4interp -gen program.p4                  generate + run test cases
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/target/bmv2"
	"gauntlet/internal/testgen"
)

func main() {
	pktHex := flag.String("pkt", "", "input packet as hex bytes")
	gen := flag.Bool("gen", false, "generate symbolic test cases and run them")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: p4interp [-pkt HEX | -gen] program.p4")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := types.Check(prog); err != nil {
		fatal(err)
	}
	target, err := bmv2.Compile(prog, nil)
	if err != nil {
		fatal(err)
	}

	switch {
	case *gen:
		cases, err := testgen.Generate(prog, testgen.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		stf := &bmv2.STF{Target: target}
		mismatches, err := stf.Run(cases)
		if err != nil {
			fatal(err)
		}
		for _, c := range cases {
			fmt.Println("case:", c.Summary())
		}
		if len(mismatches) > 0 {
			for _, m := range mismatches {
				fmt.Println("MISMATCH:", m)
			}
			os.Exit(1)
		}
		fmt.Printf("%d test cases, all match the symbolic semantics\n", len(cases))
	case *pktHex != "":
		pkt, err := hex.DecodeString(*pktHex)
		if err != nil {
			fatal(err)
		}
		res, err := target.Inject(nil, pkt)
		if err != nil {
			fatal(err)
		}
		if res.Drop {
			fmt.Println("packet dropped (parser reject)")
		} else {
			fmt.Printf("output packet: %x\n", res.Packet)
		}
	default:
		fmt.Fprintln(os.Stderr, "p4interp: need -pkt or -gen")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "p4interp: %v\n", err)
	os.Exit(1)
}
